// Package cluster assembles complete simulated deployments of the
// Chord + DAT protocol stack: one sim.Engine, one SimNetwork, and n
// protocol nodes with DAT layers. The experiment harness, the datsim
// tool and the protocol-level tests all build on it.
//
// Two start-up modes are supported: protocol joins (every node runs the
// real join + stabilization path — used by churn experiments) and warm
// start (neighbor state seeded from the ideal ring and then maintained by
// the live protocol — used by large-scale measurements of converged
// rings, which is how the paper's §5 numbers are taken).
package cluster

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
)

// IDStrategy selects how node identifiers are generated.
type IDStrategy int

// Identifier generation strategies (paper §5.2 compares random
// placement against identifier probing).
const (
	// RandomIDs draws identifiers uniformly at random.
	RandomIDs IDStrategy = iota
	// ProbedIDs uses the identifier-probing distribution of Adler et al.
	ProbedIDs
	// EvenIDs spaces identifiers perfectly evenly (the theoretical ideal).
	EvenIDs
)

// String names the strategy for experiment tables.
func (s IDStrategy) String() string {
	switch s {
	case RandomIDs:
		return "random"
	case ProbedIDs:
		return "probed"
	case EvenIDs:
		return "even"
	default:
		return fmt.Sprintf("IDStrategy(%d)", int(s))
	}
}

// Options configures a simulated cluster.
type Options struct {
	// N is the number of nodes. Required.
	N int
	// Bits is the identifier space width. Default 32.
	Bits uint
	// Seed drives all randomness. Default 1.
	Seed int64
	// IDs selects the identifier strategy. Default RandomIDs.
	IDs IDStrategy
	// Scheme selects the DAT parent rule for the live nodes. Default
	// BalancedLocal (what the prototype can compute locally).
	Scheme core.Scheme
	// Latency models one-way delay. Default constant 1ms.
	Latency sim.LatencyModel
	// ProtocolJoin runs the real join path for every node instead of
	// warm-starting neighbor state from the ideal ring. Slower at scale;
	// use for churn/convergence studies. Default false (warm start).
	ProtocolJoin bool
	// JoinSpacing is the interval between protocol joins when
	// ProtocolJoin is set. Default 50ms.
	JoinSpacing time.Duration
	// StabilizeEvery / FixFingersEvery / PingEvery override the chord
	// maintenance cadence. Long-duration monitoring runs should raise
	// them so maintenance traffic does not dominate the event queue.
	StabilizeEvery  time.Duration
	FixFingersEvery time.Duration
	PingEvery       time.Duration
	// Local supplies node-local samples: it receives the node index, the
	// current virtual time, and the rendezvous key. Nil means no node
	// contributes values.
	Local func(node int, now time.Duration, key ident.ID) (float64, bool)
	// ChildTTLSlots, BatchDelay and HoldPerLevel pass through to the DAT
	// layer (HoldPerLevel < 0 disables slot synchronization).
	ChildTTLSlots int
	BatchDelay    time.Duration
	HoldPerLevel  time.Duration
	// ShareResults passes through to the DAT layer (root broadcasts each
	// completed slot result).
	ShareResults bool
	// SuccessorListLen passes through to the Chord layer. Default 4.
	SuccessorListLen int
	// Delivery passes the delivery-assurance policy (acked updates,
	// backoff, failover — DESIGN.md §10) through to the DAT layer. The
	// zero value enables it with defaults; set Delivery.Disable to fall
	// back to fire-and-forget updates.
	Delivery core.DeliveryConfig
	// Batch passes the send-machine coalescing policy (DESIGN.md §12)
	// through to the DAT layer. The zero value enables it with
	// defaults; set Batch.Disable for one datagram per update.
	Batch core.BatchConfig
	// Overload passes the overload-protection policy (bounded queues,
	// priority shedding, per-peer circuit breakers — DESIGN.md §14)
	// through to the DAT layer. Unlike Delivery/Batch the zero value
	// DISABLES it; set Overload.Enable to turn it on.
	Overload core.OverloadConfig
	// DropProb injects message loss.
	DropProb float64
	// Observer wires runtime telemetry through every node: the network
	// tap feeds its message counters, and all chord/core hooks report to
	// its instruments and span ring (DESIGN.md §9). Hooks never schedule
	// events or draw randomness, so attaching one does not perturb the
	// simulation. Optional.
	Observer *obs.Observer
	// SelfMon enables the layer-2 self-monitoring plane (DESIGN.md §13):
	// every node gets its own LoadVec fed from the core hooks, and New
	// starts one dedicated aggregation tree per obs.SelfMonAttrs entry
	// whose node-local samples are the LoadVec totals — the cluster
	// monitors its own load through its own trees. SelfMon.Slot defaults
	// to 2s; run it slower than the primary slot to bound overhead.
	SelfMon obs.SelfMonConfig
	// Logger receives structured protocol logs from every node. Nil
	// means silent (the usual choice for large runs).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Bits == 0 {
		o.Bits = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Latency == nil {
		o.Latency = sim.ConstantLatency(time.Millisecond)
	}
	if o.JoinSpacing <= 0 {
		o.JoinSpacing = 50 * time.Millisecond
	}
	if o.StabilizeEvery <= 0 {
		o.StabilizeEvery = 300 * time.Millisecond
	}
	if o.FixFingersEvery <= 0 {
		o.FixFingersEvery = 500 * time.Millisecond
	}
	if o.PingEvery <= 0 {
		o.PingEvery = time.Second
	}
	if o.SelfMon.Enable && o.SelfMon.Slot <= 0 {
		o.SelfMon.Slot = 2 * time.Second
	}
	return o
}

// Cluster is a running simulated deployment.
type Cluster struct {
	Opts   Options
	Engine *sim.Engine
	Net    *transport.SimNetwork
	Space  ident.Space
	Chord  []*chord.Node
	DAT    []*core.Node
	// Loads holds each node's per-tree load accounting, indexed like
	// Chord/DAT. Populated only when Opts.SelfMon.Enable; a Rejoin
	// replaces the slot with fresh counters (fresh protocol state).
	Loads []*obs.LoadVec

	eps []transport.Endpoint

	// Struct-of-arrays node registry, indexed like Chord/DAT/eps: the
	// identifier and address of every node ever built, surviving crashes
	// and rejoins (both reuse the slot). Large-n paths read these instead
	// of chasing per-node pointers or re-deriving addresses.
	ids   []ident.ID
	addrs []transport.Addr

	// Reusable scratch for the convergence-polling hot path: Ring() and
	// Converged() run once per simulated second while a 10k-node cluster
	// settles, and chord.NewRing copies its input, so one buffer serves
	// every call.
	ringIDs   []ident.ID
	liveNodes []*chord.Node

	// selfMonKeys maps each monitoring tree's rendezvous key back to its
	// attribute; immutable after New.
	selfMonKeys map[ident.ID]string
	// selfMonLatest reads each monitoring tree's root result, by
	// attribute.
	selfMonLatest map[string]func() (int64, core.Aggregate, bool)
}

// New builds a cluster and brings the ring to convergence. It returns an
// error if the overlay fails to converge within a generous simulated-time
// budget.
func New(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.N <= 0 {
		return nil, fmt.Errorf("cluster: N must be positive")
	}
	eng := sim.NewEngine(opts.Seed)
	net := transport.NewSimNetwork(eng, transport.SimConfig{
		Latency:  opts.Latency,
		DropProb: opts.DropProb,
	})
	space := ident.New(opts.Bits)

	var ids []ident.ID
	switch opts.IDs {
	case EvenIDs:
		ids = chord.EvenIDs(space, opts.N)
	case ProbedIDs:
		ids = chord.ProbedIDs(space, opts.N, eng.Rand())
	default:
		ids = chord.RandomIDs(space, opts.N, eng.Rand())
	}

	c := &Cluster{
		Opts:   opts,
		Engine: eng,
		Net:    net,
		Space:  space,
	}
	if opts.SelfMon.Enable {
		c.selfMonKeys = make(map[ident.ID]string, len(obs.SelfMonAttrs))
		for _, attr := range obs.SelfMonAttrs {
			c.selfMonKeys[space.HashString(attr)] = attr
		}
	}
	if opts.Observer != nil {
		net.SetTap(opts.Observer.Tap())
	}
	for i := 0; i < opts.N; i++ {
		c.buildNode(transport.Addr(fmt.Sprintf("node/%d", i)), ids[i], i)
	}

	if !opts.ProtocolJoin {
		c.warmStart(ids)
		// Let one maintenance round confirm the seeded state.
		eng.RunFor(2 * opts.StabilizeEvery)
	} else {
		c.protocolJoin()
		// Wait until every node has entered the ring before judging
		// convergence, or a half-formed ring of early joiners would pass.
		deadline := eng.Now() + sim.Time(10*time.Minute)
		for !c.allRunning() {
			if eng.Now() >= deadline {
				return nil, fmt.Errorf("cluster: %d/%d nodes joined within budget", c.runningCount(), opts.N)
			}
			eng.RunFor(time.Second)
		}
	}
	if err := c.AwaitConverged(10 * time.Minute); err != nil {
		return nil, err
	}
	if opts.SelfMon.Enable {
		c.selfMonLatest = make(map[string]func() (int64, core.Aggregate, bool), len(obs.SelfMonAttrs))
		for _, attr := range obs.SelfMonAttrs {
			latest, err := c.StartContinuousAll(space.HashString(attr), opts.SelfMon.Slot)
			if err != nil {
				return nil, fmt.Errorf("cluster: start self-monitoring tree %s: %w", attr, err)
			}
			c.selfMonLatest[attr] = latest
		}
		if opts.Observer != nil {
			opts.Observer.SetLoadSummary(c.ClusterLoad)
		}
	}
	return c, nil
}

// newStack constructs one node's endpoint + Chord + DAT layers with the
// cluster-wide configuration (the single source of truth for per-node
// config — New, AddNode and Rejoin all build nodes through it).
func (c *Cluster) newStack(addr transport.Addr, id ident.ID, idx int) (transport.Endpoint, *chord.Node, *core.Node) {
	ep := c.Net.Endpoint(addr)
	logger := c.Opts.Logger
	if logger != nil {
		logger = logger.With("node", string(addr))
	}
	chordCfg := chord.Config{
		Space:            c.Space,
		StabilizeEvery:   c.Opts.StabilizeEvery,
		FixFingersEvery:  c.Opts.FixFingersEvery,
		FingersPerFix:    8,
		PingEvery:        c.Opts.PingEvery,
		SuccessorListLen: c.Opts.SuccessorListLen,
		Logger:           logger,
	}
	if c.Opts.Observer != nil {
		chordCfg.Obs = c.Opts.Observer.ChordHooks()
	}
	cn := chord.New(ep, c.Net.Clock(), id, chordCfg)
	var local func(key ident.ID) (float64, bool)
	if c.Opts.Local != nil {
		clk := c.Net.Clock()
		local = func(key ident.ID) (float64, bool) { return c.Opts.Local(idx, clk.Now(), key) }
	}
	var lv *obs.LoadVec
	if c.Opts.SelfMon.Enable {
		// Each node accounts its own load; Rejoin lands here again and
		// replaces the slot with fresh counters.
		lv = obs.NewLoadVec(0)
		for len(c.Loads) <= idx {
			c.Loads = append(c.Loads, nil)
		}
		c.Loads[idx] = lv
		// The monitoring trees' node-local samples are the node's own
		// LoadVec totals; every other key falls through to the
		// experiment's sensor. Counters are read at tick time on the
		// deterministically ordered sim paths, so the published values
		// are a pure function of the seed.
		userLocal := local
		local = func(key ident.ID) (float64, bool) {
			switch c.selfMonKeys[key] {
			case obs.LoadAttrMsgs:
				return float64(lv.NodeLoad()), true
			case obs.LoadAttrBytes:
				return float64(lv.NodeBytes()), true
			}
			if userLocal != nil {
				return userLocal(key)
			}
			return 0, false
		}
	}
	coreCfg := core.NodeConfig{
		Scheme:        c.Opts.Scheme,
		Local:         local,
		ChildTTLSlots: c.Opts.ChildTTLSlots,
		BatchDelay:    c.Opts.BatchDelay,
		HoldPerLevel:  c.Opts.HoldPerLevel,
		ShareResults:  c.Opts.ShareResults,
		Delivery:      c.Opts.Delivery,
		Batch:         c.Opts.Batch,
		Overload:      c.Opts.Overload,
		Logger:        logger,
	}
	switch {
	case lv != nil && c.Opts.Observer != nil:
		coreCfg.Obs = obs.MergeCoreHooks(lv.CoreHooks(), c.Opts.Observer.CoreHooks())
	case lv != nil:
		coreCfg.Obs = lv.CoreHooks()
	case c.Opts.Observer != nil:
		coreCfg.Obs = c.Opts.Observer.CoreHooks()
	}
	dn := core.NewNode(cn, ep, c.Net.Clock(), coreCfg)
	return ep, cn, dn
}

// buildNode appends a freshly constructed node stack to the cluster's
// parallel registry slices.
func (c *Cluster) buildNode(addr transport.Addr, id ident.ID, idx int) {
	ep, cn, dn := c.newStack(addr, id, idx)
	c.eps = append(c.eps, ep)
	c.Chord = append(c.Chord, cn)
	c.DAT = append(c.DAT, dn)
	c.ids = append(c.ids, id)
	c.addrs = append(c.addrs, addr)
}

func (c *Cluster) runningCount() int {
	count := 0
	for _, n := range c.Chord {
		if n.Running() {
			count++
		}
	}
	return count
}

func (c *Cluster) allRunning() bool { return c.runningCount() == len(c.Chord) }

// warmStart seeds every node's neighbor state from the ideal ring. The
// seeding is batched: one flat finger buffer and one successor scratch
// serve every node (SeedState copies what it keeps), so warm-starting a
// 10k-node ring costs O(1) transient allocations rather than O(n).
func (c *Cluster) warmStart(ids []ident.ID) {
	ring := mustRing(c.Space, ids)
	byID := make(map[ident.ID]chord.NodeRef, len(ids))
	for i, n := range c.Chord {
		byID[ids[i]] = n.Self()
	}
	listLen := c.Opts.SuccessorListLen
	if listLen <= 0 {
		listLen = 4
	}
	fingers := make([]chord.NodeRef, c.Space.Bits())
	succs := make([]chord.NodeRef, 0, listLen)
	for i, n := range c.Chord {
		self := ids[i]
		pred := byID[ring.Pred(self)]
		succs = succs[:0]
		cur := self
		for k := 0; k < listLen && len(ids) > 1; k++ {
			cur = ring.Succ(cur)
			if cur == self {
				break
			}
			succs = append(succs, byID[cur])
		}
		for j := range fingers {
			fingers[j] = byID[ring.Finger(self, uint(j))]
		}
		if len(ids) == 1 {
			pred = chord.NodeRef{}
		}
		n.SeedState(pred, succs, fingers)
	}
}

// protocolJoin runs the real join path for every node.
func (c *Cluster) protocolJoin() {
	c.Chord[0].Create()
	boot := c.Chord[0].Self().Addr
	for i := 1; i < len(c.Chord); i++ {
		n := c.Chord[i]
		c.Engine.Schedule(time.Duration(i)*c.Opts.JoinSpacing, func() {
			n.Join(boot, func(err error) {
				if err != nil {
					// Re-try once after a stabilization window; transient
					// lookup failures happen while the ring is forming.
					c.Engine.Schedule(time.Second, func() {
						n.Join(boot, func(error) {})
					})
				}
			})
		})
	}
}

// Ring returns the ideal snapshot of the currently running nodes.
func (c *Cluster) Ring() *chord.Ring {
	ids := c.ringIDs[:0]
	for i, n := range c.Chord {
		if n.Running() {
			ids = append(ids, c.ids[i])
		}
	}
	c.ringIDs = ids
	return mustRing(c.Space, ids)
}

func mustRing(space ident.Space, ids []ident.ID) *chord.Ring {
	r, err := chord.NewRing(space, ids)
	if err != nil {
		panic(err)
	}
	return r
}

// AwaitConverged advances simulated time until every running node's
// successor, predecessor and finger table match the ideal ring.
func (c *Cluster) AwaitConverged(limit time.Duration) error {
	deadline := c.Engine.Now() + sim.Time(limit)
	for {
		if c.Converged() {
			return nil
		}
		if c.Engine.Now() >= deadline {
			return fmt.Errorf("cluster: no convergence within %v (now %v)", limit, c.Engine.Now())
		}
		c.Engine.RunFor(time.Second)
	}
}

// Converged reports whether the live overlay matches the ideal ring.
func (c *Cluster) Converged() bool {
	live := c.liveNodes[:0]
	for _, n := range c.Chord {
		if n.Running() {
			live = append(live, n)
		}
	}
	c.liveNodes = live
	if len(live) == 0 {
		return false
	}
	ring := c.Ring()
	for _, n := range live {
		self := n.Self().ID
		if len(live) == 1 {
			if n.Successor().Addr != n.Self().Addr {
				return false
			}
			continue
		}
		if n.Successor().ID != ring.Succ(self) {
			return false
		}
		if p := n.Predecessor(); p.IsZero() || p.ID != ring.Pred(self) {
			return false
		}
		for j, f := range n.Fingers() {
			if f.IsZero() || f.ID != ring.Finger(self, uint(j)) {
				return false
			}
		}
	}
	return true
}

// RunFor advances the simulation.
func (c *Cluster) RunFor(d time.Duration) { c.Engine.RunFor(d) }

// Endpoint returns node i's transport endpoint (shared by its Chord and
// DAT layers; additional layers like MAAN send through it too).
func (c *Cluster) Endpoint(i int) transport.Endpoint { return c.eps[i] }

// Addrs returns a copy of every node's transport address, indexed like
// Chord/DAT.
func (c *Cluster) Addrs() []transport.Addr {
	out := make([]transport.Addr, len(c.addrs))
	copy(out, c.addrs)
	return out
}

// NodeAddr returns node i's transport address from the registry, without
// touching the endpoint.
func (c *Cluster) NodeAddr(i int) transport.Addr { return c.addrs[i] }

// NodeID returns node i's ring identifier from the registry. It is valid
// even while the node is crashed (Rejoin reuses it).
func (c *Cluster) NodeID(i int) ident.ID { return c.ids[i] }

// AddNode creates a fresh node with the given identifier and joins it to
// the ring through the protocol (never warm-started: joining nodes are
// what churn experiments measure). It returns the new node's index.
func (c *Cluster) AddNode(id ident.ID) int {
	i := len(c.Chord)
	c.buildNode(transport.Addr(fmt.Sprintf("node/%d", i)), id, i)
	cn := c.Chord[i]

	// Bootstrap through any live node, retrying a few times: a join can
	// transiently fail while the ring digests other churn.
	var boot transport.Addr
	for j, n := range c.Chord[:i] {
		if n.Running() {
			boot = c.eps[j].Addr()
			break
		}
	}
	if boot != "" {
		attempts := 0
		var try func()
		try = func() {
			attempts++
			cn.Join(boot, func(err error) {
				if err != nil && attempts < 5 {
					c.Engine.Schedule(time.Second, try)
				}
			})
		}
		try()
	}
	return i
}

// Rejoin brings a crashed or departed node back under its old identifier
// and address, with completely fresh protocol state — the real recovery
// path, not a warm start. The new node replaces index i and joins through
// any live node with the same retry policy as AddNode. Rejoining a node
// that is still running panics: that is a scenario-scheduling bug.
func (c *Cluster) Rejoin(i int) {
	old := c.Chord[i]
	if old.Running() {
		panic(fmt.Sprintf("cluster: Rejoin(%d) while node is still running", i))
	}
	id := old.Self().ID
	addr := old.Self().Addr
	ep, cn, dn := c.newStack(addr, id, i)
	c.eps[i] = ep
	c.Chord[i] = cn
	c.DAT[i] = dn

	var boot transport.Addr
	for j, n := range c.Chord {
		if j != i && n.Running() {
			boot = c.eps[j].Addr()
			break
		}
	}
	if boot == "" {
		cn.Create()
		return
	}
	attempts := 0
	var try func()
	try = func() {
		attempts++
		cn.Join(boot, func(err error) {
			if err != nil && attempts < 5 {
				c.Engine.Schedule(time.Second, try)
			}
		})
	}
	try()
}

// Crash fails node i without warning: maintenance stops and the endpoint
// goes silent.
func (c *Cluster) Crash(i int) {
	c.Chord[i].Stop(false)
	_ = c.eps[i].Close()
}

// Leave departs node i gracefully.
func (c *Cluster) Leave(i int) {
	c.DAT[i].Close() // flush the send machine before the endpoint goes
	c.Chord[i].Stop(true)
	_ = c.eps[i].Close()
}

// StartContinuousAll starts continuous aggregation for key on every
// running node and returns a function that reads the latest root result.
func (c *Cluster) StartContinuousAll(key ident.ID, slot time.Duration) (latest func() (int64, core.Aggregate, bool), err error) {
	for i, d := range c.DAT {
		if !c.Chord[i].Running() {
			continue
		}
		if err := d.StartContinuous(key, slot, nil); err != nil {
			return nil, err
		}
	}
	return func() (int64, core.Aggregate, bool) {
		root := c.Ring().SuccessorOf(key)
		for i, n := range c.Chord {
			if n.Running() && n.Self().ID == root {
				return c.DAT[i].LastResult(key)
			}
		}
		return 0, core.Aggregate{}, false
	}, nil
}

// SelfMonKey returns the rendezvous key of the self-monitoring tree for
// attr (obs.LoadAttrMsgs / obs.LoadAttrBytes).
func (c *Cluster) SelfMonKey(attr string) ident.ID { return c.Space.HashString(attr) }

// SelfMonLatest reads the latest root aggregate of attr's monitoring
// tree. ok is false when self-monitoring is off or no round completed.
func (c *Cluster) SelfMonLatest(attr string) (int64, core.Aggregate, bool) {
	latest := c.selfMonLatest[attr]
	if latest == nil {
		return 0, core.Aggregate{}, false
	}
	return latest()
}

// ClusterLoad answers "cluster max/avg/sum node load" from the
// dat.load.msgs monitoring tree — the DAT monitoring itself, one root
// read instead of n scrapes. The summary carries the live imbalance
// factor (max/mean, the paper's fig. 8 metric) and the coverage the
// round achieved.
func (c *Cluster) ClusterLoad() (obs.LoadSummary, bool) {
	slot, agg, ok := c.SelfMonLatest(obs.LoadAttrMsgs)
	if !ok || agg.Count == 0 {
		return obs.LoadSummary{}, false
	}
	return obs.NewLoadSummary(slot, agg.Count, agg.Sum, agg.Min, agg.Max, agg.Coverage, agg.Degraded), true
}

// KickSelfMon enrolls every running node in the self-monitoring trees,
// skipping nodes where the key is already active. The call matters after
// churn: rejoined nodes hold fresh protocol state and would otherwise
// only relay (never contribute) until enrolled.
func (c *Cluster) KickSelfMon() error {
	if !c.Opts.SelfMon.Enable {
		return nil
	}
	for _, attr := range obs.SelfMonAttrs {
		key := c.Space.HashString(attr)
		for i, d := range c.DAT {
			if !c.Chord[i].Running() || d.Active(key) {
				continue
			}
			if err := d.StartContinuous(key, c.Opts.SelfMon.Slot, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
