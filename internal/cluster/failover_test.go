package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/obs"
)

// failoverLocal gives node i the sample float64(i) for every key.
func failoverLocal(i int, _ time.Duration, _ ident.ID) (float64, bool) { return float64(i), true }

// failoverFixture builds the 32-node ring used by the failover e2e
// tests: maintenance is frozen past the test horizon so the delivery
// layer's ack timeouts are the only failure detector in play, and the
// contrast between enabled and disabled delivery is attributable to it
// alone.
func failoverFixture(t *testing.T, delivery core.DeliveryConfig, o *obs.Observer) (*Cluster, ident.ID) {
	t.Helper()
	c, err := New(Options{
		N: 32, Seed: 41, Local: failoverLocal,
		Delivery: delivery,
		Observer: o,
		// Result broadcasts give every node the last full count, so a
		// handover standby measures coverage against what the tree
		// actually delivered rather than the noisy density estimate.
		ShareResults:    true,
		PingEvery:       time.Hour,
		StabilizeEvery:  time.Hour,
		FixFingersEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, c.Space.HashString("cpu-usage")
}

// pickVictims returns the index of the key root, the index of the
// root's ring successor (the handover standby, which must survive), and
// the index of the mid-tree parent with the most cached children.
func (c *Cluster) pickVictims(t *testing.T, key ident.ID) (rootIdx, standbyIdx, parentIdx int) {
	t.Helper()
	ring := c.Ring()
	rootID := ring.SuccessorOf(key)
	standbyID := ring.Succ(rootID)
	rootIdx, standbyIdx, parentIdx = -1, -1, -1
	best := 0
	for i := range c.Chord {
		if !c.Chord[i].Running() {
			continue
		}
		switch c.Chord[i].Self().ID {
		case rootID:
			rootIdx = i
			continue
		case standbyID:
			standbyIdx = i
			continue
		}
		if kids := len(c.DAT[i].ChildrenInfo(key)); kids > best {
			best, parentIdx = kids, i
		}
	}
	if rootIdx < 0 || standbyIdx < 0 {
		t.Fatalf("root/standby not found (%d/%d)", rootIdx, standbyIdx)
	}
	if parentIdx < 0 || best == 0 {
		t.Fatal("no mid-tree parent with cached children")
	}
	return rootIdx, standbyIdx, parentIdx
}

// TestFailoverSurvivesParentAndRootCrash is the PR's end-to-end
// acceptance scenario: on a 32-node ring with continuous aggregation,
// crash a mid-tree parent and the key root in the same slot. With
// delivery assurance on, the orphans re-home in-slot, the root's
// children hand the tree over to the successor, and within a few slots
// a live root reports an aggregate covering every surviving node —
// with both failover counters incremented and the handover result
// flagged Degraded while the standby bridges. With delivery off (same
// seed, same victims), the tree demonstrably loses the subtree: no
// fresh result approaching full coverage appears in the same window.
func TestFailoverSurvivesParentAndRootCrash(t *testing.T) {
	const (
		n    = 32
		slot = 500 * time.Millisecond
	)

	run := func(t *testing.T, delivery core.DeliveryConfig) (bestCount uint64, bestCoverage float64, degradedSeen bool, o *obs.Observer) {
		t.Helper()
		o = obs.NewObserver(16)
		c, key := failoverFixture(t, delivery, o)
		latest, err := c.StartContinuousAll(key, slot)
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(6 * slot)

		rootIdx, standbyIdx, parentIdx := c.pickVictims(t, key)
		_ = standbyIdx

		// Mid-slot crash: quarter of a slot past the warmup boundary, so
		// in-flight sends and holds are mid-round when both nodes die.
		c.RunFor(slot / 4)
		crashSlot, _, _ := latest()
		c.Crash(parentIdx)
		c.Crash(rootIdx)

		// Poll through the recovery window for fresh post-crash results.
		deadline := 6 * slot
		for elapsed := time.Duration(0); elapsed < deadline; elapsed += slot / 5 {
			c.RunFor(slot / 5)
			s, agg, ok := latest()
			if !ok || s <= crashSlot {
				continue
			}
			if agg.Count > bestCount {
				bestCount = agg.Count
			}
			if agg.Coverage > bestCoverage {
				bestCoverage = agg.Coverage
			}
			if agg.Degraded {
				degradedSeen = true
			}
		}
		return bestCount, bestCoverage, degradedSeen, o
	}

	t.Run("enabled", func(t *testing.T) {
		count, coverage, degraded, o := run(t, core.DeliveryConfig{})
		if want := uint64(n - 2); count < want {
			t.Errorf("best post-crash count = %d, want >= %d (subtree lost despite failover)", count, want)
		}
		if want := float64(n-2) / float64(n); coverage < want {
			t.Errorf("best post-crash coverage = %.3f, want >= %.3f", coverage, want)
		}
		if !degraded {
			t.Error("no Degraded result observed during handover bridging")
		}
		if got := o.Reg.Counter("dat_parent_failovers_total", "").Value(); got < 1 {
			t.Errorf("dat_parent_failovers_total = %d, want >= 1", got)
		}
		if got := o.Reg.Counter("dat_root_handovers_total", "").Value(); got < 1 {
			t.Errorf("dat_root_handovers_total = %d, want >= 1", got)
		}
	})

	t.Run("disabled", func(t *testing.T) {
		count, _, _, _ := run(t, core.DeliveryConfig{Disable: true})
		if count >= uint64(n-2) {
			t.Errorf("fire-and-forget mode recovered full coverage (%d) with a dead parent and root; the contrast scenario is broken", count)
		}
	})
}
