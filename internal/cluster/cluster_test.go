package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := New(Options{N: -3}); err == nil {
		t.Error("negative N accepted")
	}
}

func TestIDStrategyString(t *testing.T) {
	if RandomIDs.String() != "random" || ProbedIDs.String() != "probed" || EvenIDs.String() != "even" {
		t.Error("strategy names wrong")
	}
	if IDStrategy(9).String() == "" {
		t.Error("unknown strategy empty")
	}
}

func TestWarmStartConvergesAtScale(t *testing.T) {
	// The default warm start must converge essentially immediately even
	// with slow maintenance cadences (regression: a protocol-join default
	// here once cost large experiments their entire convergence budget).
	start := time.Now()
	c, err := New(Options{
		N: 512, Seed: 1, IDs: ProbedIDs,
		StabilizeEvery:  7500 * time.Millisecond,
		FixFingersEvery: 15 * time.Second,
		PingEvery:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("warm start took %v wall time", wall)
	}
	// Seeded rings still run maintenance: run a while and stay converged.
	c.RunFor(2 * time.Minute)
	if !c.Converged() {
		t.Fatal("maintenance broke the seeded state")
	}
}

func TestSingleNodeCluster(t *testing.T) {
	c, err := New(Options{N: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("lone node not converged")
	}
	key := c.Space.HashString("x")
	latest, err := c.StartContinuousAll(key, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	if _, agg, ok := latest(); !ok || agg.Count != 0 {
		// No Local configured: count 0 but the root still reports.
		if !ok {
			t.Fatal("lone root produced nothing")
		}
	}
}

func TestEndpointAndAddrsIndexing(t *testing.T) {
	c, err := New(Options{N: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	addrs := c.Addrs()
	if len(addrs) != 5 {
		t.Fatalf("addrs = %d", len(addrs))
	}
	for i := range addrs {
		if c.Endpoint(i).Addr() != addrs[i] {
			t.Fatalf("endpoint %d addr mismatch", i)
		}
	}
}

func TestProtocolJoinMatchesWarmRing(t *testing.T) {
	warm, err := New(Options{N: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(Options{N: 10, Seed: 6, ProtocolJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	w, c := warm.Ring().IDs(), cold.Ring().IDs()
	for i := range w {
		if w[i] != c[i] {
			t.Fatalf("rings differ at %d", i)
		}
	}
}

func TestAddNodeJoinsAndConverges(t *testing.T) {
	c, err := New(Options{N: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var id ident.ID = 12345
	for c.Ring().Contains(id) {
		id++
	}
	idx := c.AddNode(id)
	if idx != 8 {
		t.Fatalf("index = %d", idx)
	}
	c.RunFor(10 * time.Second)
	if err := c.AwaitConverged(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !c.Chord[idx].Running() {
		t.Fatal("added node not running")
	}
	if !c.Ring().Contains(id) {
		t.Fatal("added node missing from ring")
	}
}

func TestCrashAndLeaveBookkeeping(t *testing.T) {
	c, err := New(Options{N: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	c.Leave(2)
	if c.runningCount() != 6 {
		t.Fatalf("running = %d", c.runningCount())
	}
	if c.Ring().N() != 6 {
		t.Fatalf("ring size = %d", c.Ring().N())
	}
	c.RunFor(30 * time.Second)
	if err := c.AwaitConverged(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestLocalReceivesVirtualTime(t *testing.T) {
	var seenNow time.Duration
	c, err := New(Options{
		N: 4, Seed: 9,
		Local: func(node int, now time.Duration, key ident.ID) (float64, bool) {
			if now > seenNow {
				seenNow = now
			}
			return 1, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := c.Space.HashString("t")
	if _, err := c.StartContinuousAll(key, time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	if seenNow < time.Second {
		t.Fatalf("Local never saw advancing virtual time: %v", seenNow)
	}
}

func TestSchemePropagatesToDAT(t *testing.T) {
	c, err := New(Options{N: 4, Seed: 10, Scheme: core.Basic})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.DAT {
		if d.Scheme() != core.Basic {
			t.Fatalf("scheme = %v", d.Scheme())
		}
	}
}

func TestDropProbOptionWired(t *testing.T) {
	c, err := New(Options{N: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	counter := metrics.NewMessageCounter(nil)
	c.Net.SetTap(counter)
	c.Net.SetDropProb(1.0)
	c.RunFor(5 * time.Second)
	if c.Net.Dropped() == 0 {
		t.Fatal("no drops recorded at p=1")
	}
}

func TestSelfMonClusterLoad(t *testing.T) {
	c, err := New(Options{
		N: 24, Seed: 12,
		SelfMon: obs.SelfMonConfig{Enable: true, Slot: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Loads) != 24 {
		t.Fatalf("Loads has %d slots, want 24", len(c.Loads))
	}
	c.RunFor(10 * time.Second)

	s, ok := c.ClusterLoad()
	if !ok {
		t.Fatal("no self-monitoring round completed")
	}
	if s.Nodes != 24 {
		t.Fatalf("summary counts %d nodes, want 24", s.Nodes)
	}
	if s.Sum <= 0 || s.Mean <= 0 || s.Max < s.Mean || s.Min > s.Mean {
		t.Fatalf("incoherent summary %+v", s)
	}
	if s.Imbalance < 1 {
		t.Fatalf("imbalance %v below 1 (max below mean)", s.Imbalance)
	}
	// The bytes tree aggregates alongside the msgs tree.
	if _, agg, ok := c.SelfMonLatest(obs.LoadAttrBytes); !ok || agg.Count != 24 || agg.Sum <= 0 {
		t.Fatalf("bytes tree: ok=%v agg=%+v", ok, agg)
	}

	// KickSelfMon must be idempotent on already-enrolled nodes...
	if err := c.KickSelfMon(); err != nil {
		t.Fatalf("idempotent kick: %v", err)
	}
	// ...and re-enroll a rejoined node so it contributes again.
	c.Crash(3)
	c.RunFor(5 * time.Second)
	c.Rejoin(3)
	if err := c.KickSelfMon(); err != nil {
		t.Fatalf("post-rejoin kick: %v", err)
	}
	if err := c.AwaitConverged(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.RunFor(15 * time.Second)
	if s, ok := c.ClusterLoad(); !ok || s.Nodes != 24 {
		t.Fatalf("post-rejoin summary: ok=%v %+v", ok, s)
	}
}
