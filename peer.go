package dat

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/gma"
	"repro/internal/ident"
	"repro/internal/maan"
	"repro/internal/obs"
	"repro/internal/rpcudp"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PeerConfig configures a live UDP peer.
type PeerConfig struct {
	// Listen is the UDP listen address; "127.0.0.1:0" picks a free port.
	// Required.
	Listen string
	// Name identifies this host in the MAAN directory. Defaults to the
	// bound address.
	Name string
	// Bits is the identifier-space width (must match the whole ring).
	// Default 32.
	Bits uint
	// Scheme selects the DAT parent rule. Default BalancedLocal.
	Scheme Scheme
	// Attributes declares the MAAN schema (must match the whole ring).
	// Optional; without it resource indexing is disabled.
	Attributes []Attribute
	// Stabilize, FixFingers, Ping override the overlay maintenance
	// cadence. Defaults suit LAN deployments (300ms/500ms/1s).
	Stabilize  time.Duration
	FixFingers time.Duration
	Ping       time.Duration
	// ShareResults makes the attribute root broadcast each completed slot
	// result so LatestResult is fresh on every peer (costs n-1 messages
	// per slot).
	ShareResults bool
	// CallTimeout bounds one RPC attempt. Default 500ms.
	CallTimeout time.Duration
	// Delivery configures the DAT delivery-assurance layer (acked
	// updates, backoff, parent failover, root handover — DESIGN.md §10).
	// The zero value enables it with defaults; set Delivery.Disable for
	// fire-and-forget updates.
	Delivery DeliveryConfig
	// Batch configures the send machine coalescing updates bound for
	// the same parent into single datagrams (DESIGN.md §12). The zero
	// value enables it with defaults; set Batch.Disable for one
	// datagram per update.
	Batch BatchConfig
	// Overload configures the overload-protection layer: bounded send
	// queues with priority shedding and per-peer circuit breakers
	// (DESIGN.md §14). Unlike Delivery/Batch the zero value DISABLES
	// it; set Overload.Enable to turn it on.
	Overload OverloadConfig
	// LegacyWire encodes outbound frames with the pre-compact
	// whole-envelope gob codec, as peers from before DESIGN.md §11 do.
	// Inbound decoding always accepts both framings, so mixed rings
	// interoperate; use this during staged rollouts and in
	// mixed-version tests.
	LegacyWire bool
	// RPCTimeout bounds blocking convenience calls (Join, Query...).
	// Default 10s.
	RPCTimeout time.Duration
	// Observer wires runtime telemetry — Prometheus instruments,
	// aggregation-round spans, the /healthz probe, and the /debug/dat
	// view — through the whole stack (DESIGN.md §9). Use one Observer
	// per peer; instruments are process-wide names, not per-peer ones.
	Observer *obs.Observer
	// SelfMon enables the self-monitoring plane (DESIGN.md §13): the
	// peer publishes its own per-tree load totals as dat.load.* sensors
	// and StartSelfMonitor feeds them into dedicated monitoring trees,
	// so ClusterLoad answers cluster-wide load questions through the
	// DAT itself. SelfMon.Slot defaults to 2s.
	SelfMon obs.SelfMonConfig
	// Logger receives structured logs from the transport and protocol
	// layers. Nil means silent.
	Logger *slog.Logger
}

// Peer is one live DAT node over real UDP sockets: the full P-GMA stack
// of the paper — sensors and a producer (GMA layer), MAAN indexing, and
// the Chord + DAT overlay — in a single process.
type Peer struct {
	cfg      PeerConfig
	space    ident.Space
	ep       *rpcudp.Endpoint
	clock    *transport.RealClock
	chord    *chord.Node
	dat      *core.Node
	maan     *maan.Service
	producer *gma.Producer
	load     *obs.LoadVec // per-tree accounting; nil unless SelfMon or Observer

	mu       sync.Mutex
	results  map[string]Aggregate // latest root results per attribute
	announce func()               // stop function of the MAAN announcer
	closed   bool
}

// NewPeer opens the UDP endpoint and assembles the protocol stack. The
// peer is passive until Create or Join.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Listen == "" {
		return nil, errors.New("dat: PeerConfig.Listen is required")
	}
	if cfg.Bits == 0 {
		cfg.Bits = 32
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	space := ident.New(cfg.Bits)
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	rpcCfg := rpcudp.Config{CallTimeout: cfg.CallTimeout, Logger: logger.With("layer", "rpcudp")}
	if cfg.LegacyWire {
		rpcCfg.Codec = wire.Legacy{}
	}
	if cfg.Observer != nil {
		rpcCfg.Tap = cfg.Observer.Tap()
		rpcCfg.Obs = cfg.Observer.TransportHooks()
	}
	ep, err := rpcudp.Listen(cfg.Listen, rpcCfg)
	if err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = string(ep.Addr())
	}
	// The identifier is the hash of the bound address; probing joins may
	// replace it before the peer enters the ring.
	id := space.Hash([]byte(ep.Addr()))
	// Seed the live clock's maintenance jitter from the identifier:
	// distinct per node (no lock-step maintenance across a deployment)
	// yet fully determined by the bound address, so runs replay.
	clock := transport.NewRealClock(int64(id))
	nodeLogger := logger.With("node", string(ep.Addr()))
	chordCfg := chord.Config{
		Space:           space,
		StabilizeEvery:  cfg.Stabilize,
		FixFingersEvery: cfg.FixFingers,
		PingEvery:       cfg.Ping,
		Logger:          nodeLogger.With("layer", "chord"),
	}
	coreCfg := core.NodeConfig{
		Scheme:       cfg.Scheme,
		ShareResults: cfg.ShareResults,
		Delivery:     cfg.Delivery,
		Batch:        cfg.Batch,
		Overload:     cfg.Overload,
		Logger:       nodeLogger.With("layer", "dat"),
	}
	if cfg.SelfMon.Enable && cfg.SelfMon.Slot <= 0 {
		cfg.SelfMon.Slot = 2 * time.Second
	}
	var load *obs.LoadVec
	switch {
	case cfg.Observer != nil:
		// The observer's bound hooks already feed its LoadVec alongside
		// the dat_tree_* families; reuse it as the peer's accounting.
		chordCfg.Obs = cfg.Observer.ChordHooks()
		coreCfg.Obs = cfg.Observer.CoreHooks()
		load = cfg.Observer.Load
	case cfg.SelfMon.Enable:
		// No observer, but the self-monitoring sensors still need the
		// per-tree counters: feed a standalone LoadVec.
		load = obs.NewLoadVec(0)
		coreCfg.Obs = load.CoreHooks()
	}
	cn := chord.New(ep, clock, id, chordCfg)
	p := &Peer{
		cfg:     cfg,
		space:   space,
		ep:      ep,
		clock:   clock,
		chord:   cn,
		load:    load,
		results: make(map[string]Aggregate),
	}
	p.producer = gma.NewProducer(cfg.Name, space, clock)
	coreCfg.Local = p.producer.Local
	p.dat = core.NewNode(cn, ep, clock, coreCfg)
	if cfg.SelfMon.Enable {
		// The peer's own load counters become ordinary sensors: the
		// monitoring trees aggregate them exactly like any grid metric.
		p.AddSensor(obs.LoadAttrMsgs, func() (float64, bool) {
			return float64(p.load.NodeLoad()), true
		})
		p.AddSensor(obs.LoadAttrBytes, func() (float64, bool) {
			return float64(p.load.NodeBytes()), true
		})
	}
	if len(cfg.Attributes) > 0 {
		schema, err := maan.NewSchema(space, cfg.Attributes...)
		if err != nil {
			ep.Close()
			return nil, err
		}
		p.maan = maan.NewService(cn, ep, clock, schema)
	}
	if o := cfg.Observer; o != nil {
		o.Reg.GaugeFunc("dat_transport_pending_calls",
			"In-flight UDP requests awaiting a reply or timeout.",
			func() float64 { return float64(ep.PendingCalls()) })
		// Overload-layer gauges read the node's own counters so open →
		// half-open → open cycles cannot double-count the way a
		// hook-driven gauge would.
		o.Reg.GaugeFunc("dat_queue_bytes",
			"Estimated bytes queued across the send machine's destination queues.",
			func() float64 { return float64(p.dat.OverloadStats().QueuedBytes) })
		o.Reg.GaugeFunc("dat_breakers_open",
			"Peers currently isolated by an open or half-open circuit breaker.",
			func() float64 { return float64(p.dat.OverloadStats().BreakersOpen) })
		o.SetHealth(p.health)
		o.AddDebug("dat node "+string(ep.Addr()), p.dat.WriteDebug)
		o.SetOverload(p.dat.WriteOverloadDebug)
		if cfg.SelfMon.Enable {
			// /debug/load's cluster section serves the cached root
			// result — never a live protocol query on the scrape path.
			o.SetLoadSummary(p.ClusterLoad)
		}
	}
	return p, nil
}

// health is the /healthz probe: the peer reports running once its chord
// node participates in a ring.
func (p *Peer) health() obs.Health {
	self := p.chord.Self()
	h := obs.Health{
		Running:       p.chord.Running(),
		Addr:          string(self.Addr),
		ID:            self.ID.String(),
		EstimatedSize: p.chord.EstimatedNetworkSize(),
		ActiveKeys:    len(p.dat.ActiveKeys()),
	}
	if s := p.chord.Successor(); !s.IsZero() {
		h.Successor = string(s.Addr)
	}
	if pred := p.chord.Predecessor(); !pred.IsZero() {
		h.Predecessor = string(pred.Addr)
	}
	return h
}

// Addr returns the peer's bound UDP address — what other peers pass as
// the bootstrap address.
func (p *Peer) Addr() string { return string(p.ep.Addr()) }

// ID returns the peer's ring identifier.
func (p *Peer) ID() uint64 { return uint64(p.chord.Self().ID) }

// Create bootstraps a new ring with this peer as its only member.
func (p *Peer) Create() { p.chord.Create() }

// Join enters the ring known to the bootstrap address. It blocks until
// the join completes or the RPC timeout expires.
func (p *Peer) Join(bootstrap string) error {
	done := make(chan error, 1)
	p.chord.Join(transport.Addr(bootstrap), func(err error) { done <- err })
	return p.await(done, "join")
}

// JoinProbed enters the ring using the identifier-probing join, which
// keeps node spacing even and balanced DATs flat. It blocks like Join.
func (p *Peer) JoinProbed(bootstrap string) error {
	done := make(chan error, 1)
	p.chord.JoinProbed(transport.Addr(bootstrap), func(_ ident.ID, err error) { done <- err })
	return p.await(done, "probed join")
}

func (p *Peer) await(done chan error, op string) error {
	select {
	case err := <-done:
		return err
	case <-time.After(p.cfg.RPCTimeout):
		return fmt.Errorf("dat: %s timed out after %v", op, p.cfg.RPCTimeout)
	}
}

// AddSensor publishes a local sensor under an attribute name. The sensor
// feeds both DAT aggregation (the peer's contribution to the global
// aggregate named attr) and MAAN announcements.
func (p *Peer) AddSensor(attr string, sensor func() (float64, bool)) {
	p.producer.AddSensor(attr, gma.SensorFunc(func(time.Duration) (float64, bool) { return sensor() }))
}

// SetLabel publishes a static string attribute (e.g. os-name, site) in
// the MAAN directory for exact-match discovery (dat.Eq predicates).
func (p *Peer) SetLabel(attr, value string) { p.producer.SetLabel(attr, value) }

// AddCPUSensor publishes the host's real CPU utilization from /proc/stat
// under the attribute name (Linux; reports no value elsewhere).
func (p *Peer) AddCPUSensor(attr string) {
	p.producer.AddSensor(attr, gma.NewProcCPUSensor())
}

// StartMonitor begins continuous aggregation of attr with the given slot
// duration. Every ring member monitoring attr must use the same slot.
// If this peer currently owns the attribute's rendezvous key it acts as
// the tree root; onResult (may be nil) fires there once per slot.
func (p *Peer) StartMonitor(attr string, slot time.Duration, onResult func(slot int64, agg Aggregate)) error {
	key := p.space.HashString(attr)
	return p.dat.StartContinuous(key, slot, func(s int64, agg Aggregate) {
		p.mu.Lock()
		p.results[attr] = agg
		p.mu.Unlock()
		if onResult != nil {
			onResult(s, agg)
		}
	})
}

// StartSelfMonitor joins the dat.load.* monitoring trees (DESIGN.md
// §13) with the configured self-monitoring slot: this peer contributes
// its own load counters and relays others'. Call it on every ring
// member after Create/Join, like any monitored attribute. Requires
// PeerConfig.SelfMon.Enable.
func (p *Peer) StartSelfMonitor() error {
	if !p.cfg.SelfMon.Enable {
		return errors.New("dat: self-monitoring not enabled in PeerConfig")
	}
	for _, attr := range obs.SelfMonAttrs {
		if err := p.StartMonitor(attr, p.cfg.SelfMon.Slot, nil); err != nil {
			return fmt.Errorf("dat: start self-monitor %s: %w", attr, err)
		}
	}
	return nil
}

// ClusterLoad returns the latest cluster-wide load summary computed by
// the dat.load.msgs monitoring tree: per-node load statistics and the
// live imbalance factor (max/mean), coverage-qualified. It reads the
// cached root result and never blocks; ok is false until a monitoring
// round has completed (or been shared/cached on this peer).
func (p *Peer) ClusterLoad() (obs.LoadSummary, bool) {
	key := p.space.HashString(obs.LoadAttrMsgs)
	if slot, agg, ok := p.dat.LastResult(key); ok && agg.Count > 0 {
		return obs.NewLoadSummary(slot, agg.Count, agg.Sum, agg.Min, agg.Max, agg.Coverage, agg.Degraded), true
	}
	p.mu.Lock()
	agg, ok := p.results[obs.LoadAttrMsgs]
	p.mu.Unlock()
	if !ok || agg.Count == 0 {
		return obs.LoadSummary{}, false
	}
	return obs.NewLoadSummary(0, agg.Count, agg.Sum, agg.Min, agg.Max, agg.Coverage, agg.Degraded), true
}

// QueryClusterLoad asks the cluster for its load distribution with one
// on-demand protocol query against the dat.load.msgs tree, blocking
// like Query. It works on any ring member whose peers registered the
// load sensors (SelfMon.Enable), even without continuous monitoring.
func (p *Peer) QueryClusterLoad(window time.Duration) (obs.LoadSummary, error) {
	agg, err := p.Query(obs.LoadAttrMsgs, window)
	if err != nil {
		return obs.LoadSummary{}, err
	}
	return obs.NewLoadSummary(0, agg.Count, agg.Sum, agg.Min, agg.Max, agg.Coverage, agg.Degraded), nil
}

// StopMonitor halts continuous aggregation of attr on this peer.
func (p *Peer) StopMonitor(attr string) {
	p.dat.StopContinuous(p.space.HashString(attr))
}

// LatestResult returns this peer's most recent root-computed aggregate
// for attr, if it has acted as the attribute's root.
func (p *Peer) LatestResult(attr string) (Aggregate, bool) {
	if _, agg, ok := p.dat.LastResult(p.space.HashString(attr)); ok {
		return agg, true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	agg, ok := p.results[attr]
	return agg, ok
}

// Query performs an on-demand aggregation of attr: the request routes to
// the attribute's root, which collects over the window and replies. It
// blocks until the result arrives or the RPC timeout expires.
func (p *Peer) Query(attr string, window time.Duration) (Aggregate, error) {
	type result struct {
		agg Aggregate
		err error
	}
	done := make(chan result, 1)
	p.dat.Query(p.space.HashString(attr), window, func(r core.QueryResp, err error) {
		done <- result{r.Agg, err}
	})
	select {
	case r := <-done:
		return r.agg, r.err
	case <-time.After(p.cfg.RPCTimeout + window):
		return Aggregate{}, fmt.Errorf("dat: query %q timed out", attr)
	}
}

// Announce registers this peer's current sensor readings in the MAAN
// directory and keeps refreshing them at the given period. Requires
// Attributes in the config.
func (p *Peer) Announce(period time.Duration) error {
	if p.maan == nil {
		return errors.New("dat: no MAAN schema configured")
	}
	// Start the new announcer before touching p.mu: AnnounceEvery
	// registers synchronously, which routes lookups over the transport
	// and can re-enter this peer inline on the simulated network —
	// never under a node lock (locksafe). Swap the stop handle under
	// the lock, then stop any previous announcer outside it.
	stop := p.producer.AnnounceEvery(p.maan, period)
	p.mu.Lock()
	prev := p.announce
	p.announce = stop
	p.mu.Unlock()
	if prev != nil {
		prev()
	}
	return nil
}

// FindResources answers a conjunctive multi-attribute range query
// against the MAAN directory. It blocks until the result or timeout.
func (p *Peer) FindResources(preds []Predicate) ([]Resource, error) {
	if p.maan == nil {
		return nil, errors.New("dat: no MAAN schema configured")
	}
	type result struct {
		res []Resource
		err error
	}
	done := make(chan result, 1)
	p.maan.MultiAttrQuery(preds, func(res []Resource, _ int, err error) {
		done <- result{res, err}
	})
	select {
	case r := <-done:
		return r.res, r.err
	case <-time.After(p.cfg.RPCTimeout):
		return nil, errors.New("dat: resource query timed out")
	}
}

// Leave departs the ring gracefully and closes the endpoint.
func (p *Peer) Leave() error { return p.shutdown(true) }

// Close crashes the peer (no goodbye messages) and closes the endpoint.
func (p *Peer) Close() error { return p.shutdown(false) }

func (p *Peer) shutdown(graceful bool) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	stop := p.announce
	p.announce = nil
	p.mu.Unlock()
	if stop != nil {
		stop()
	}
	if p.maan != nil {
		p.maan.Close()
	}
	p.dat.Close() // flush the send machine before the endpoint goes
	p.chord.Stop(graceful)
	return p.ep.Close()
}
