// Gridmonitor reproduces the paper's motivating application (§5.4) end
// to end: a 512-node simulated Grid where every node replays a 2-hour
// CPU-usage trace, and an administrator watches the global total and
// average through a balanced DAT, comparing against ground truth — the
// workload behind Fig. 9.
package main

import (
	"fmt"
	"log"
	"time"

	dat "repro"
)

func main() {
	const (
		n    = 512
		slot = 15 * time.Second
		span = 30 * time.Minute // shorten the 2h window for a demo run
	)

	// The paper replays one server trace on every node; we do the same
	// with the synthetic substitute.
	trace := dat.GenerateCPUTrace("sunfire-v880", 7)

	fmt.Printf("building %d-node grid...\n", n)
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:      n,
		Seed:   7,
		IDs:    dat.ProbedIDs,
		Scheme: dat.BalancedLocal,
		Sensor: func(_ int, now time.Duration, attr string) (float64, bool) {
			if attr != "cpu-usage" {
				return 0, false
			}
			return trace.At(now), true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tree := grid.Tree("cpu-usage", dat.BalancedLocal)
	fmt.Printf("overlay ready: height=%d, max branching=%d\n\n", tree.Height(), tree.MaxBranching())

	latest, err := grid.Monitor("cpu-usage", slot)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s  %-10s  %-12s  %-12s  %s\n", "time", "nodes", "aggregated", "actual", "err%")
	grid.Run(6 * slot) // warm-up: subtree caches fill
	var worst float64
	lastSlot := int64(-1)
	for t := 6 * slot; t < span; t += slot {
		grid.Run(slot)
		slotIdx, agg, ok := latest()
		if !ok || slotIdx == lastSlot {
			continue
		}
		lastSlot = slotIdx
		actual := trace.At(time.Duration(slotIdx)*slot) * n
		errPct := 0.0
		if actual != 0 {
			errPct = (agg.Sum - actual) / actual * 100
			if errPct < 0 {
				errPct = -errPct
			}
		}
		if errPct > worst {
			worst = errPct
		}
		if (slotIdx % 8) == 0 {
			fmt.Printf("%-8v  %-10d  %-12.1f  %-12.1f  %.2f\n",
				(time.Duration(slotIdx) * slot).Round(time.Second), agg.Count, agg.Sum, actual, errPct)
		}
	}
	fmt.Printf("\nworst per-slot error: %.2f%% (the paper's Fig. 9b: points on the diagonal)\n", worst)
}
