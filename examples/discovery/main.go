// Discovery demonstrates the P-GMA indexing layer (§2.2): a small fleet
// of real UDP peers registers its resources in MAAN and answers
// multi-attribute range queries — "find hosts with at least 2 GHz CPUs,
// 2-4 GB of memory, and under 50% load".
package main

import (
	"fmt"
	"log"
	"time"

	dat "repro"
)

func main() {
	attrs := []dat.Attribute{
		{Name: "cpu-speed", Min: 0, Max: 5},      // GHz
		{Name: "memory-size", Min: 0, Max: 8192}, // MB
		{Name: "cpu-usage", Min: 0, Max: 100},    // percent
		{Name: "os-name", Kind: dat.String},      // exact-match attribute
	}
	type host struct {
		name            string
		speed, mem, cpu float64
		os              string
	}
	fleet := []host{
		{"node-a", 1.6, 1024, 20, "linux"},
		{"node-b", 2.4, 2048, 35, "linux"},
		{"node-c", 2.8, 4096, 90, "linux"},
		{"node-d", 3.0, 2048, 45, "freebsd"},
		{"node-e", 3.2, 8192, 10, "linux"},
		{"node-f", 2.0, 512, 60, "freebsd"},
	}

	var peers []*dat.Peer
	for i, h := range fleet {
		h := h
		p, err := dat.NewPeer(dat.PeerConfig{
			Listen:     "127.0.0.1:0",
			Name:       h.name,
			Attributes: attrs,
			Stabilize:  50 * time.Millisecond,
			FixFingers: 80 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		p.AddSensor("cpu-speed", func() (float64, bool) { return h.speed, true })
		p.AddSensor("memory-size", func() (float64, bool) { return h.mem, true })
		p.AddSensor("cpu-usage", func() (float64, bool) { return h.cpu, true })
		p.SetLabel("os-name", h.os)
		if i == 0 {
			p.Create()
		} else if err := p.JoinProbed(peers[0].Addr()); err != nil {
			log.Fatal(err)
		}
		if err := p.Announce(500 * time.Millisecond); err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
	}

	// Let the overlay converge and the registrations land.
	time.Sleep(2 * time.Second)

	query := []dat.Predicate{
		dat.Range("cpu-speed", 2.0, 5.0),
		dat.Range("memory-size", 2048, 4096),
		dat.Range("cpu-usage", 0, 50),
	}
	fmt.Println("query: cpu-speed in [2,5] GHz, memory in [2,4] GB, usage <= 50%")
	found, err := peers[3].FindResources(query)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range found {
		fmt.Printf("  %-8s speed=%.1fGHz mem=%.0fMB usage=%.0f%% os=%s\n",
			r.Name, r.Values["cpu-speed"], r.Values["memory-size"], r.Values["cpu-usage"],
			r.Strings["os-name"])
	}
	// Expected: node-b (2.4GHz/2GB/35%) and node-d (3.0GHz/2GB/45%).

	// Mixed query with an exact-match label: linux hosts under 50% load.
	fmt.Println("\nquery: os-name == linux AND cpu-usage <= 50%")
	found, err = peers[1].FindResources([]dat.Predicate{
		dat.Eq("os-name", "linux"),
		dat.Range("cpu-usage", 0, 50),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range found {
		fmt.Printf("  %-8s usage=%.0f%% os=%s\n", r.Name, r.Values["cpu-usage"], r.Strings["os-name"])
	}
	// Expected: node-a, node-b, node-e.
}
