// Churn demonstrates the paper's headline operational claim: DAT trees
// need no repair under node arrival and departure, because parents are
// derived from Chord finger tables that stabilization maintains anyway.
// A 128-node grid aggregates continuously while nodes crash, leave and
// join; the aggregate tracks the live population throughout.
package main

import (
	"fmt"
	"log"
	"time"

	dat "repro"
)

func main() {
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:    128,
		Seed: 11,
		IDs:  dat.ProbedIDs,
		Sensor: func(node int, _ time.Duration, _ string) (float64, bool) {
			return 1, true // each node contributes 1: SUM == live population
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	latest, err := grid.Monitor("population", time.Second)
	if err != nil {
		log.Fatal(err)
	}

	report := func(phase string) {
		_, agg, ok := latest()
		if !ok {
			fmt.Printf("%-28s no aggregate yet\n", phase)
			return
		}
		fmt.Printf("%-28s live=%3d aggregated=%3.0f\n", phase, grid.N(), agg.Sum)
	}

	grid.Run(15 * time.Second)
	report("steady state:")

	// Crash 12 nodes at once (no goodbyes).
	for i := 0; i < 12; i++ {
		grid.Crash(i)
	}
	grid.Run(5 * time.Second)
	report("right after 12 crashes:")
	grid.Run(30 * time.Second)
	report("after stabilization:")

	// 8 graceful departures.
	for i := 12; i < 20; i++ {
		grid.Leave(i)
	}
	grid.Run(20 * time.Second)
	report("after 8 graceful leaves:")

	// 10 fresh joins. Joiners have no continuous registration of their
	// own; those that receive tree traffic enroll automatically and start
	// contributing, the rest phase in once the operator re-invokes
	// Monitor — exactly how a deployment rolls in new hosts.
	for i := 0; i < 10; i++ {
		grid.Join()
	}
	grid.Run(30 * time.Second)
	report("after 10 joins:")

	fmt.Println("\nNo tree-repair messages were exchanged at any point —")
	fmt.Println("parents are implicit in the finger tables (run 'datbench -exp churn'")
	fmt.Println("to compare against explicit-membership trees).")
}
