// Scheduler closes the P-GMA loop the paper's §2.1 motivates: an
// application-scheduling consumer that (a) watches the Grid's global
// load through a DAT to decide *whether* to admit work, and (b) uses
// MAAN multi-attribute discovery to pick *where* to place each job.
//
// A simulated 96-node grid carries a batch of jobs: each job wants a
// host with enough memory on a given OS; admission pauses while the
// globally aggregated average load is above a threshold.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	dat "repro"
)

const n = 96

type hostState struct {
	mu   sync.Mutex
	load []float64 // current CPU usage per node
	mem  []float64
	os   []string
}

func main() {
	rng := rand.New(rand.NewSource(3))
	state := &hostState{
		load: make([]float64, n),
		mem:  make([]float64, n),
		os:   make([]string, n),
	}
	oses := []string{"linux", "freebsd"}
	for i := 0; i < n; i++ {
		state.load[i] = 10 + rng.Float64()*30
		state.mem[i] = float64(512 * (1 + rng.Intn(8)))
		state.os[i] = oses[rng.Intn(2)]
	}

	// Build the overlay with per-node sensors reading the mutable state.
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N: n, Seed: 3, IDs: dat.ProbedIDs,
		Sensor: func(node int, _ time.Duration, attr string) (float64, bool) {
			if attr != "cpu-usage" {
				return 0, false
			}
			state.mu.Lock()
			defer state.mu.Unlock()
			return state.load[node], true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	latest, err := grid.Monitor("cpu-usage", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	grid.Run(15 * time.Second)

	// The directory view the scheduler consults (kept fresh out of band
	// in a real deployment by producer announcements; here we snapshot).
	snapshot := func() []dat.Resource {
		state.mu.Lock()
		defer state.mu.Unlock()
		out := make([]dat.Resource, n)
		for i := 0; i < n; i++ {
			out[i] = dat.Resource{
				Name:    fmt.Sprintf("host%02d", i),
				Values:  map[string]float64{"cpu-usage": state.load[i], "memory-size": state.mem[i]},
				Strings: map[string]string{"os-name": state.os[i]},
			}
		}
		return out
	}

	type job struct {
		name   string
		os     string
		mem    float64
		demand float64
	}
	var jobs []job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, job{
			name:   fmt.Sprintf("job%02d", i),
			os:     oses[rng.Intn(2)],
			mem:    float64(512 * (1 + rng.Intn(4))),
			demand: 15 + rng.Float64()*25,
		})
	}

	const admitThreshold = 60.0
	placed, deferred := 0, 0
	for _, j := range jobs {
		grid.Run(time.Second)
		_, agg, ok := latest()
		if !ok {
			log.Fatal("no global aggregate")
		}
		if agg.Avg() > admitThreshold {
			deferred++
			continue // admission control: the Grid is saturated
		}
		// Discovery: matching hosts, least loaded first.
		preds := []dat.Predicate{
			dat.Eq("os-name", j.os),
			dat.Range("memory-size", j.mem, 1<<20),
			dat.Range("cpu-usage", 0, 100-j.demand),
		}
		var candidates []dat.Resource
		for _, r := range snapshot() {
			if r.Matches(preds) {
				candidates = append(candidates, r)
			}
		}
		if len(candidates) == 0 {
			deferred++
			continue
		}
		sort.Slice(candidates, func(a, b int) bool {
			return candidates[a].Values["cpu-usage"] < candidates[b].Values["cpu-usage"]
		})
		chosen := candidates[0]
		var idx int
		fmt.Sscanf(chosen.Name, "host%02d", &idx)
		state.mu.Lock()
		state.load[idx] += j.demand
		state.mu.Unlock()
		placed++
		fmt.Printf("%s (%s, %.0fMB, +%.0f%%) -> %s (now %.0f%% loaded); grid avg %.1f%%\n",
			j.name, j.os, j.mem, j.demand, chosen.Name, state.load[idx], agg.Avg())
	}
	grid.Run(5 * time.Second)
	_, agg, _ := latest()
	fmt.Printf("\nplaced %d, deferred %d; final grid avg %.1f%% (admission threshold %.0f%%)\n",
		placed, deferred, agg.Avg(), admitThreshold)
}
