// Quickstart: build a simulated 64-node Grid, monitor the global average
// CPU usage through a balanced DAT, and inspect the tree that carried
// the aggregates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	dat "repro"
)

func main() {
	// Every node reports a synthetic CPU usage in [20, 80).
	rng := rand.New(rand.NewSource(42))
	usage := make([]float64, 64)
	for i := range usage {
		usage[i] = 20 + rng.Float64()*60
	}

	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:      64,
		Seed:   42,
		IDs:    dat.ProbedIDs,     // identifier probing keeps the tree flat
		Scheme: dat.BalancedLocal, // the paper's Algorithm 1
		Sensor: func(node int, _ time.Duration, attr string) (float64, bool) {
			if attr != "cpu-usage" {
				return 0, false
			}
			return usage[node], true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start continuous aggregation: every node pushes its subtree
	// aggregate to its DAT parent once per second.
	latest, err := grid.Monitor("cpu-usage", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	grid.Run(15 * time.Second) // advance virtual time

	slot, agg, ok := latest()
	if !ok {
		log.Fatal("no aggregate produced")
	}
	fmt.Printf("slot %d: %d nodes, total=%.1f avg=%.1f min=%.1f max=%.1f\n",
		slot, agg.Count, agg.Sum, agg.Avg(), agg.Min, agg.Max)

	// Ground truth for comparison.
	var sum float64
	for _, u := range usage {
		sum += u
	}
	fmt.Printf("ground truth: total=%.1f avg=%.1f\n", sum, sum/64)

	// The tree that carried it: balanced DATs stay flat.
	tree := grid.Tree("cpu-usage", dat.BalancedLocal)
	fmt.Printf("tree: height=%d (log2(64)=6), max branching=%d, avg branching=%.2f\n",
		tree.Height(), tree.MaxBranching(), tree.AvgBranching())

	// One on-demand query from an arbitrary node.
	q, err := grid.Query(17, "cpu-usage", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-demand from node 17: %d nodes, avg=%.1f\n", q.Count, q.Avg())
}
