// Command datnode runs one live DAT monitoring node over real UDP — the
// paper's prototype deployment (§5.1 ran up to 64 instances per machine).
// Each node publishes its local CPU usage (from /proc/stat on Linux, or
// a synthetic sensor with -synthetic) and participates in the continuous
// aggregation of the global total and average.
//
// Start a ring:
//
//	datnode -listen 127.0.0.1:9000 -create
//
// Join more nodes (in other terminals):
//
//	datnode -listen 127.0.0.1:0 -join 127.0.0.1:9000
//	datnode -listen 127.0.0.1:0 -join 127.0.0.1:9000 -probe
//
// Or run many instances in one process, as the paper's cluster
// deployment did (64 per machine):
//
//	datnode -listen 127.0.0.1:9000 -create -instances 64
//
// Whichever node owns the attribute's rendezvous key prints one line per
// slot with the global aggregate. Any node can also poll on demand with
// -query. Stop with Ctrl-C (the node departs gracefully).
//
// With -obs.addr the primary node serves its observability endpoints —
// Prometheus /metrics, a JSON /healthz probe, /debug/dat (the node's
// live aggregation view), /debug/spans, /debug/load (per-tree load and
// the cluster-wide self-monitoring summary), /debug/overload (queue
// budgets, shed counters and circuit breakers), and net/http/pprof:
//
//	datnode -listen 127.0.0.1:9000 -create -obs.addr 127.0.0.1:8080
//	curl -s http://127.0.0.1:8080/metrics
//
// Diagnostics go to stderr as structured logs; -log.level picks the
// verbosity (debug shows per-join and per-parent-switch detail).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	dat "repro"
	"repro/internal/obs"
)

// syntheticSensor returns a fake CPU reading source. Sensors are called
// from both the aggregation slot loop and the MAAN announce loop (two
// goroutines under the live clock), and *rand.Rand is not safe for
// concurrent use, so the RNG is guarded by a mutex. The seed is fixed
// per instance: deterministic across runs, distinct across instances.
func syntheticSensor(instance int64) func() (float64, bool) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1 + instance))
	base := 20 + rng.Float64()*40
	return func() (float64, bool) {
		mu.Lock()
		defer mu.Unlock()
		return base + rng.Float64()*10, true
	}
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		create    = flag.Bool("create", false, "bootstrap a new ring")
		join      = flag.String("join", "", "bootstrap address of an existing ring")
		probe     = flag.Bool("probe", false, "join with identifier probing (balanced placement)")
		name      = flag.String("name", "", "host name in the resource directory (default: listen address)")
		attr      = flag.String("attr", "cpu-usage", "monitored attribute")
		slot      = flag.Duration("slot", 2*time.Second, "aggregation slot duration")
		query     = flag.Duration("query", 0, "if set, poll the global aggregate on demand at this interval")
		announce  = flag.Duration("announce", 10*time.Second, "MAAN directory refresh interval")
		synthetic = flag.Bool("synthetic", false, "use a synthetic CPU sensor instead of /proc/stat")
		instances = flag.Int("instances", 1, "additional in-process instances joining through this node")
		obsAddr   = flag.String("obs.addr", "", "serve /metrics, /healthz, /debug/dat and pprof on this address")
		failover  = flag.Bool("failover", true, "acked updates with parent failover and root handover (false: fire-and-forget)")
		batch     = flag.Bool("batch.enable", true, "coalesce same-parent updates into batched datagrams (false: one datagram per update)")
		batchBy   = flag.Int("batch.maxbytes", 0, "flush a batch at this estimated encoded size (0: default 1200)")
		batchDl   = flag.Duration("batch.maxdelay", 0, "flush a batch after the first element waits this long (0: default 5ms)")
		batchEl   = flag.Int("batch.maxelems", 0, "flush a batch at this many elements (0: default 32)")
		overload  = flag.Bool("overload.enable", true, "bounded send queues with priority shedding and per-peer circuit breakers (false: unbounded queues, no breakers)")
		ovQBytes  = flag.Int("overload.maxqueuebytes", 0, "per-destination queue byte budget (0: default 8192)")
		ovQElems  = flag.Int("overload.maxqueueelems", 0, "per-destination queue element budget (0: default 256)")
		ovTBytes  = flag.Int("overload.maxtotalbytes", 0, "global queued-byte budget across all destinations (0: default 262144)")
		ovBFails  = flag.Int("overload.breakerfails", 0, "consecutive send failures opening a peer's circuit breaker (0: default 3)")
		ovBCool   = flag.Duration("overload.breakercooldown", 0, "breaker open time before a half-open probe (0: default 1s)")
		selfmon   = flag.Bool("selfmon", true, "publish this node's load counters into the dat.load.* self-monitoring trees")
		selfmonSl = flag.Duration("selfmon.slot", 0, "self-monitoring aggregation slot (0: 4x -slot)")
		share     = flag.Bool("share", true, "roots broadcast completed slot results down their trees (keeps every node's cached aggregates and /debug/load live)")
		logLevel  = flag.String("log.level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if !*create && *join == "" {
		fatal("need -create or -join ADDR")
	}

	attrs := []dat.Attribute{
		{Name: "cpu-usage", Min: 0, Max: 100},
		{Name: "memory-size", Min: 0, Max: 1 << 20},
	}
	delivery := dat.DeliveryConfig{Disable: !*failover}
	batching := dat.BatchConfig{
		Disable:  !*batch,
		MaxBytes: *batchBy,
		MaxDelay: *batchDl,
		MaxElems: *batchEl,
	}
	overloadCfg := dat.OverloadConfig{
		Enable:          *overload,
		MaxQueueBytes:   *ovQBytes,
		MaxQueueElems:   *ovQElems,
		MaxTotalBytes:   *ovTBytes,
		BreakerFailures: *ovBFails,
		BreakerCooldown: *ovBCool,
	}
	selfMon := dat.SelfMonConfig{Enable: *selfmon, Slot: *selfmonSl}
	if selfMon.Enable && selfMon.Slot <= 0 {
		// Load counters move slowly; a slower monitoring slot keeps the
		// plane's overhead a small fraction of the primary traffic.
		selfMon.Slot = 4 * *slot
	}
	observer := obs.NewObserver(obs.DefaultSpanCapacity)
	peer, err := dat.NewPeer(dat.PeerConfig{
		Listen:       *listen,
		Name:         *name,
		Attributes:   attrs,
		Delivery:     delivery,
		Batch:        batching,
		Overload:     overloadCfg,
		SelfMon:      selfMon,
		ShareResults: *share,
		Observer:     observer,
		Logger:       logger,
	})
	if err != nil {
		fatal("peer setup failed", "err", err)
	}
	defer peer.Close()
	logger.Info("datnode up", "addr", peer.Addr(), "id", fmt.Sprintf("%#x", peer.ID()))

	if *obsAddr != "" {
		bound, stopObs, err := obs.Serve(*obsAddr, observer, logger)
		if err != nil {
			fatal("observability server failed", "addr", *obsAddr, "err", err)
		}
		defer stopObs()
		logger.Info("observability endpoints up", "addr", bound,
			"paths", "/metrics /healthz /debug/dat /debug/spans /debug/load /debug/overload /debug/pprof/")
	}

	if *synthetic {
		peer.AddSensor(*attr, syntheticSensor(0))
	} else {
		peer.AddCPUSensor(*attr)
	}

	switch {
	case *create:
		peer.Create()
		logger.Info("created ring", "bootstrap", peer.Addr())
	case *probe:
		if err := peer.JoinProbed(*join); err != nil {
			fatal("probed join failed", "bootstrap", *join, "err", err)
		}
		logger.Info("joined via probing", "id", fmt.Sprintf("%#x", peer.ID()))
	default:
		if err := peer.Join(*join); err != nil {
			fatal("join failed", "bootstrap", *join, "err", err)
		}
		logger.Info("joined ring", "bootstrap", *join)
	}

	err = peer.StartMonitor(*attr, *slot, func(s int64, agg dat.Aggregate) {
		fmt.Printf("[root] slot=%d nodes=%d total=%.1f avg=%.1f min=%.1f max=%.1f\n",
			s, agg.Count, agg.Sum, agg.Avg(), agg.Min, agg.Max)
	})
	if err != nil {
		fatal("start monitor failed", "attr", *attr, "err", err)
	}
	if selfMon.Enable {
		if err := peer.StartSelfMonitor(); err != nil {
			fatal("start self-monitor failed", "err", err)
		}
		logger.Info("self-monitoring trees started", "slot", selfMon.Slot,
			"attrs", fmt.Sprintf("%v", obs.SelfMonAttrs))
	}
	if err := peer.Announce(*announce); err != nil {
		logger.Warn("announce failed", "err", err)
	}

	stopQuery := make(chan struct{})
	if *query > 0 {
		go func() {
			ticker := time.NewTicker(*query)
			defer ticker.Stop()
			for {
				select {
				case <-stopQuery:
					return
				case <-ticker.C:
					agg, err := peer.Query(*attr, *slot)
					if err != nil {
						logger.Warn("query failed", "err", err)
						continue
					}
					fmt.Printf("[query] nodes=%d total=%.1f avg=%.1f\n",
						agg.Count, agg.Sum, agg.Avg())
				}
			}
		}()
	}

	// Extra in-process instances, as in the paper's 64-per-machine
	// deployment: each gets its own socket and sensor and joins through
	// the primary peer.
	var extras []*dat.Peer
	for i := 1; i < *instances; i++ {
		extra, err := dat.NewPeer(dat.PeerConfig{
			Listen:       "127.0.0.1:0",
			Name:         fmt.Sprintf("%s#%d", peer.Addr(), i),
			Attributes:   attrs,
			Delivery:     delivery,
			Batch:        batching,
			Overload:     overloadCfg,
			SelfMon:      selfMon,
			ShareResults: *share,
			Logger:       logger,
		})
		if err != nil {
			fatal("instance setup failed", "instance", i, "err", err)
		}
		defer extra.Close()
		if *synthetic {
			extra.AddSensor(*attr, syntheticSensor(int64(i)))
		} else {
			extra.AddCPUSensor(*attr)
		}
		if err := extra.JoinProbed(peer.Addr()); err != nil {
			fatal("instance join failed", "instance", i, "err", err)
		}
		tag := i
		if err := extra.StartMonitor(*attr, *slot, func(s int64, agg dat.Aggregate) {
			fmt.Printf("[root@#%d] slot=%d nodes=%d total=%.1f avg=%.1f\n",
				tag, s, agg.Count, agg.Sum, agg.Avg())
		}); err != nil {
			fatal("instance monitor failed", "instance", i, "err", err)
		}
		if selfMon.Enable {
			if err := extra.StartSelfMonitor(); err != nil {
				fatal("instance self-monitor failed", "instance", i, "err", err)
			}
		}
		if err := extra.Announce(*announce); err != nil {
			logger.Warn("instance announce failed", "instance", i, "err", err)
		}
		extras = append(extras, extra)
	}
	if len(extras) > 0 {
		logger.Info("running extra in-process instances", "count", len(extras))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopQuery)
	logger.Info("leaving ring")
	for _, extra := range extras {
		_ = extra.Leave()
	}
	if err := peer.Leave(); err != nil {
		logger.Warn("leave failed", "err", err)
	}
}
