// Command datnode runs one live DAT monitoring node over real UDP — the
// paper's prototype deployment (§5.1 ran up to 64 instances per machine).
// Each node publishes its local CPU usage (from /proc/stat on Linux, or
// a synthetic sensor with -synthetic) and participates in the continuous
// aggregation of the global total and average.
//
// Start a ring:
//
//	datnode -listen 127.0.0.1:9000 -create
//
// Join more nodes (in other terminals):
//
//	datnode -listen 127.0.0.1:0 -join 127.0.0.1:9000
//	datnode -listen 127.0.0.1:0 -join 127.0.0.1:9000 -probe
//
// Or run many instances in one process, as the paper's cluster
// deployment did (64 per machine):
//
//	datnode -listen 127.0.0.1:9000 -create -instances 64
//
// Whichever node owns the attribute's rendezvous key prints one line per
// slot with the global aggregate. Any node can also poll on demand with
// -query. Stop with Ctrl-C (the node departs gracefully).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	dat "repro"
)

// syntheticSensor returns a fake CPU reading source. Sensors are called
// from both the aggregation slot loop and the MAAN announce loop (two
// goroutines under the live clock), and *rand.Rand is not safe for
// concurrent use, so the RNG is guarded by a mutex. The seed is fixed
// per instance: deterministic across runs, distinct across instances.
func syntheticSensor(instance int64) func() (float64, bool) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1 + instance))
	base := 20 + rng.Float64()*40
	return func() (float64, bool) {
		mu.Lock()
		defer mu.Unlock()
		return base + rng.Float64()*10, true
	}
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		create    = flag.Bool("create", false, "bootstrap a new ring")
		join      = flag.String("join", "", "bootstrap address of an existing ring")
		probe     = flag.Bool("probe", false, "join with identifier probing (balanced placement)")
		name      = flag.String("name", "", "host name in the resource directory (default: listen address)")
		attr      = flag.String("attr", "cpu-usage", "monitored attribute")
		slot      = flag.Duration("slot", 2*time.Second, "aggregation slot duration")
		query     = flag.Duration("query", 0, "if set, poll the global aggregate on demand at this interval")
		announce  = flag.Duration("announce", 10*time.Second, "MAAN directory refresh interval")
		synthetic = flag.Bool("synthetic", false, "use a synthetic CPU sensor instead of /proc/stat")
		instances = flag.Int("instances", 1, "additional in-process instances joining through this node")
	)
	flag.Parse()

	if !*create && *join == "" {
		log.Fatal("datnode: need -create or -join ADDR")
	}

	attrs := []dat.Attribute{
		{Name: "cpu-usage", Min: 0, Max: 100},
		{Name: "memory-size", Min: 0, Max: 1 << 20},
	}
	peer, err := dat.NewPeer(dat.PeerConfig{
		Listen:     *listen,
		Name:       *name,
		Attributes: attrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()
	log.Printf("datnode %s id=%#x", peer.Addr(), peer.ID())

	if *synthetic {
		peer.AddSensor(*attr, syntheticSensor(0))
	} else {
		peer.AddCPUSensor(*attr)
	}

	switch {
	case *create:
		peer.Create()
		log.Printf("created ring; bootstrap address: %s", peer.Addr())
	case *probe:
		if err := peer.JoinProbed(*join); err != nil {
			log.Fatal(err)
		}
		log.Printf("joined via probing, id=%#x", peer.ID())
	default:
		if err := peer.Join(*join); err != nil {
			log.Fatal(err)
		}
		log.Printf("joined ring via %s", *join)
	}

	err = peer.StartMonitor(*attr, *slot, func(s int64, agg dat.Aggregate) {
		fmt.Printf("[root] slot=%d nodes=%d total=%.1f avg=%.1f min=%.1f max=%.1f\n",
			s, agg.Count, agg.Sum, agg.Avg(), agg.Min, agg.Max)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := peer.Announce(*announce); err != nil {
		log.Printf("announce: %v", err)
	}

	stopQuery := make(chan struct{})
	if *query > 0 {
		go func() {
			ticker := time.NewTicker(*query)
			defer ticker.Stop()
			for {
				select {
				case <-stopQuery:
					return
				case <-ticker.C:
					agg, err := peer.Query(*attr, *slot)
					if err != nil {
						log.Printf("query: %v", err)
						continue
					}
					fmt.Printf("[query] nodes=%d total=%.1f avg=%.1f\n",
						agg.Count, agg.Sum, agg.Avg())
				}
			}
		}()
	}

	// Extra in-process instances, as in the paper's 64-per-machine
	// deployment: each gets its own socket and sensor and joins through
	// the primary peer.
	var extras []*dat.Peer
	for i := 1; i < *instances; i++ {
		extra, err := dat.NewPeer(dat.PeerConfig{
			Listen:     "127.0.0.1:0",
			Name:       fmt.Sprintf("%s#%d", peer.Addr(), i),
			Attributes: attrs,
		})
		if err != nil {
			log.Fatalf("instance %d: %v", i, err)
		}
		defer extra.Close()
		if *synthetic {
			extra.AddSensor(*attr, syntheticSensor(int64(i)))
		} else {
			extra.AddCPUSensor(*attr)
		}
		if err := extra.JoinProbed(peer.Addr()); err != nil {
			log.Fatalf("instance %d join: %v", i, err)
		}
		tag := i
		if err := extra.StartMonitor(*attr, *slot, func(s int64, agg dat.Aggregate) {
			fmt.Printf("[root@#%d] slot=%d nodes=%d total=%.1f avg=%.1f\n",
				tag, s, agg.Count, agg.Sum, agg.Avg())
		}); err != nil {
			log.Fatalf("instance %d monitor: %v", i, err)
		}
		if err := extra.Announce(*announce); err != nil {
			log.Printf("instance %d announce: %v", i, err)
		}
		extras = append(extras, extra)
	}
	if len(extras) > 0 {
		log.Printf("running %d extra in-process instances", len(extras))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopQuery)
	log.Print("leaving ring")
	for _, extra := range extras {
		_ = extra.Leave()
	}
	if err := peer.Leave(); err != nil {
		log.Printf("leave: %v", err)
	}
}
