// Command datsim runs large-scale simulated deployments of the DAT
// monitoring stack — the event-driven setup the paper uses for networks
// beyond its 512-instance cluster, up to 8192 nodes (§5.1).
//
// Example: 4096 probed nodes aggregating a synthetic CPU trace for 10
// simulated minutes under the balanced scheme, reporting tree shape and
// per-slot aggregates:
//
//	datsim -n 4096 -ids probed -scheme balanced-local -duration 10m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dat "repro"
	"repro/internal/obs"
)

func main() {
	var (
		n        = flag.Int("n", 1024, "number of nodes")
		bits     = flag.Uint("bits", 32, "identifier space width")
		seed     = flag.Int64("seed", 1, "random seed")
		ids      = flag.String("ids", "probed", "identifier placement: random, probed, even")
		scheme   = flag.String("scheme", "balanced-local", "tree scheme: basic, balanced, balanced-local")
		attr     = flag.String("attr", "cpu-usage", "monitored attribute")
		slot     = flag.Duration("slot", 15*time.Second, "aggregation slot")
		duration = flag.Duration("duration", 5*time.Minute, "simulated run length")
		report   = flag.Int("report", 4, "print one aggregate line per this many slots")
		churn    = flag.Float64("churn", 0, "crash this fraction of nodes halfway through")
		logLevel = flag.String("log.level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	idStrategy := map[string]dat.IDStrategy{
		"random": dat.RandomIDs, "probed": dat.ProbedIDs, "even": dat.EvenIDs,
	}[*ids]
	schemeVal, ok := map[string]dat.Scheme{
		"basic": dat.Basic, "balanced": dat.Balanced, "balanced-local": dat.BalancedLocal,
	}[*scheme]
	if !ok {
		fatal("unknown scheme", "scheme", *scheme)
	}

	logger.Info("building simulated grid", "n", *n, "ids", *ids, "scheme", *scheme)
	start := time.Now()
	traces := make([]*dat.Series, *n)
	for i := range traces {
		traces[i] = dat.GenerateCPUTrace(fmt.Sprintf("node%d", i), *seed+int64(i))
	}
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:      *n,
		Bits:   *bits,
		Seed:   *seed,
		IDs:    idStrategy,
		Scheme: schemeVal,
		// Long-slot runs: scale maintenance with the slot so the event
		// queue is dominated by aggregation, not pings.
		MaintenanceEvery: *slot,
		Sensor: func(node int, now time.Duration, _ string) (float64, bool) {
			return traces[node].At(now), true
		},
	})
	if err != nil {
		fatal("grid setup failed", "err", err)
	}
	logger.Info("grid converged", "wall", time.Since(start).Round(time.Millisecond))

	tree := grid.Tree(*attr, schemeVal)
	fmt.Printf("tree: root=%v height=%d maxBranching=%d avgBranching=%.2f\n",
		tree.Root, tree.Height(), tree.MaxBranching(), tree.AvgBranching())

	latest, err := grid.Monitor(*attr, *slot)
	if err != nil {
		fatal("monitor failed", "attr", *attr, "err", err)
	}
	// Warm-up: the slot-synchronized tree enrolls one level per slot.
	warmup := tree.Height() + 4
	logger.Info("warming up", "slots", warmup, "height", tree.Height())
	grid.Run(time.Duration(warmup) * *slot)

	slots := int(*duration / *slot)
	half := slots / 2
	lastSlot := int64(-1)
	for s := 0; s < slots; s++ {
		grid.Run(*slot)
		if *churn > 0 && s == half {
			k := int(float64(*n) * *churn)
			for i := 0; i < k; i++ {
				grid.Crash(i)
			}
			logger.Info("crashed nodes", "count", k, "t", grid.Now())
		}
		slotIdx, agg, ok := latest()
		if !ok || slotIdx == lastSlot {
			continue
		}
		lastSlot = slotIdx
		if s%*report == 0 {
			fmt.Printf("t=%-8v slot=%-5d nodes=%-5d total=%.1f avg=%.2f\n",
				grid.Now().Round(time.Second), slotIdx, agg.Count, agg.Sum, agg.Avg())
		}
	}
	_, agg, ok := latest()
	if !ok {
		fmt.Fprintln(os.Stderr, "datsim: no final aggregate")
		os.Exit(1)
	}
	fmt.Printf("final: nodes=%d of %d live, total=%.1f avg=%.2f (wall %v)\n",
		agg.Count, grid.N(), agg.Sum, agg.Avg(), time.Since(start).Round(time.Millisecond))
}
