// Command datbench regenerates every table and figure of the paper's
// evaluation (Cai & Hwang, IPDPS 2007, §5) plus the complexity claims of
// §2.2, printing aligned text tables and optionally writing CSV files.
//
// Usage:
//
//	datbench [-exp all|fig7a|fig7b|height|fig8a|fig8b|fig9|churn|maan]
//	         [-out DIR] [-seed N] [-quick]
//
// -quick shrinks the sweeps (smaller n, shorter monitored window) for
// smoke runs; the full configuration matches the paper's axes (16..8192
// nodes, n=512 distributions, 2-hour monitoring window).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all, fig7a, fig7b, height, fig8a, fig8b, fig9, churn, maan, ablation, multitree, overhead, widearea, ondemand")
		out   = flag.String("out", "", "directory for CSV output (optional)")
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	)
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	var tables []*experiments.Table
	start := time.Now()

	if run("fig7a") || run("fig7b") || run("height") {
		cfg := experiments.TreePropsConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{16, 64, 256, 1024}
			cfg.Trials = 1
		}
		fmt.Fprintf(os.Stderr, "tree properties (Fig. 7)...\n")
		all := experiments.TreeProperties(cfg)
		for _, t := range all {
			if run(t.ID) || (*exp == "all") {
				tables = append(tables, t)
			}
		}
	}
	if run("fig8a") {
		cfg := experiments.LoadBalanceConfig{Seed: *seed, Probing: true}
		if *quick {
			cfg.N = 128
		}
		fmt.Fprintf(os.Stderr, "message distribution (Fig. 8a)...\n")
		tables = append(tables, experiments.MessageDistribution(cfg))
	}
	if run("fig8b") {
		cfg := experiments.LoadBalanceConfig{Seed: *seed, Probing: true}
		if *quick {
			cfg.Sizes = []int{100, 400, 1000}
		}
		fmt.Fprintf(os.Stderr, "imbalance factors (Fig. 8b)...\n")
		tables = append(tables, experiments.Imbalance(cfg))
	}
	if run("fig9") {
		cfg := experiments.AccuracyConfig{Seed: *seed, SharedTrace: true}
		if *quick {
			cfg.N = 64
			cfg.Duration = 30 * time.Minute
		}
		fmt.Fprintf(os.Stderr, "monitoring accuracy (Fig. 9, n=%d)...\n", pick(cfg.N, 512))
		seriesT, scatterT, stats, err := experiments.MonitoringAccuracy(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  correlation=%.4f meanAbsErr=%.2f%% maxAbsErr=%.2f%% over %d slots\n",
			stats.Correlation, stats.MeanAbsPct, stats.MaxAbsPct, stats.Slots)
		tables = append(tables, seriesT, scatterT)
	}
	if run("churn") {
		cfg := experiments.ChurnConfig{Seed: *seed}
		if *quick {
			cfg.N = 24
			cfg.Events = 12
			cfg.TreeCounts = []int{1, 8, 32}
		}
		fmt.Fprintf(os.Stderr, "churn overhead...\n")
		t, err := experiments.ChurnOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	if run("ondemand") {
		cfg := experiments.OnDemandConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{32, 64}
		}
		fmt.Fprintf(os.Stderr, "on-demand query cost...\n")
		od, err := experiments.OnDemandCost(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, od)
	}
	if run("overhead") {
		cfg := experiments.LoadBalanceConfig{Seed: *seed, Probing: true}
		if *quick {
			cfg.Sizes = []int{100, 400, 1000}
		}
		fmt.Fprintf(os.Stderr, "message overhead...\n")
		tables = append(tables, experiments.MessageOverhead(cfg))
	}
	if run("widearea") {
		cfg := experiments.WideAreaConfig{Seed: *seed}
		if *quick {
			cfg.N = 64
			cfg.Slots = 40
			cfg.Holds = []time.Duration{10 * time.Millisecond, 150 * time.Millisecond}
		}
		fmt.Fprintf(os.Stderr, "wide-area scenario...\n")
		wa, err := experiments.WideArea(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, wa)
	}
	if run("multitree") {
		cfg := experiments.MultiTreeConfig{Seed: *seed}
		if *quick {
			cfg.N = 128
			cfg.Trees = []int{1, 16, 64}
		}
		fmt.Fprintf(os.Stderr, "multi-tree load balance...\n")
		mt, err := experiments.MultiTreeLoad(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, mt)
	}
	if run("ablation") {
		cfg := experiments.AblationConfig{Seed: *seed}
		if *quick {
			cfg.N = 48
			cfg.Slots = 60
			cfg.ListLens = []int{1, 4}
		}
		fmt.Fprintf(os.Stderr, "ablations (sync, successor list)...\n")
		syncT, err := experiments.SyncAblation(cfg)
		if err != nil {
			fatal(err)
		}
		succT, err := experiments.SuccessorListAblation(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, syncT, succT)
	}
	if run("maan") {
		cfg := experiments.MAANConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{64, 512}
			cfg.Resources = 128
		}
		fmt.Fprintf(os.Stderr, "MAAN query cost...\n")
		t, err := experiments.MAANQueryCost(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}

	if len(tables) == 0 {
		fatal(fmt.Errorf("unknown experiment %q (want all, fig7a, fig7b, height, fig8a, fig8b, fig9, churn, maan, ablation, multitree, overhead, widearea, ondemand)", *exp))
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			path := filepath.Join(*out, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func pick(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datbench:", err)
	os.Exit(1)
}
