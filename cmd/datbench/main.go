// Command datbench regenerates every table and figure of the paper's
// evaluation (Cai & Hwang, IPDPS 2007, §5) plus the complexity claims of
// §2.2, printing aligned text tables and optionally writing CSV files.
//
// Usage:
//
//	datbench [-exp all|fig7a|fig7b|height|fig8a|fig8b|fig9|churn|maan]
//	         [-out DIR] [-json DIR] [-seed N] [-quick]
//
// -quick shrinks the sweeps (smaller n, shorter monitored window) for
// smoke runs; the full configuration matches the paper's axes (16..8192
// nodes, n=512 distributions, 2-hour monitoring window).
//
// -json DIR writes one BENCH_<id>.json summary per table — wall-clock
// ns/op for the producing experiment, total messages, and the imbalance
// factor where the table reports one — for machine-readable tracking of
// benchmark drift across commits (`make bench-json`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, fig7a, fig7b, height, fig8a, fig8b, fig9, churn, maan, ablation, multitree, overhead, widearea, ondemand, wirecodec, batching, selfmon, overload, scale")
		out     = flag.String("out", "", "directory for CSV output (optional)")
		jsonDir = flag.String("json", "", "directory for BENCH_<id>.json summaries (optional)")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	)
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	var tables []*experiments.Table
	start := time.Now()

	// Wall time per table ID, attributed block-wise: every table an
	// experiment block appends shares that block's elapsed time.
	benchNs := make(map[string]int64)
	lastMark, lastStart := 0, time.Now()
	stamp := func() {
		elapsed := time.Since(lastStart).Nanoseconds()
		for _, t := range tables[lastMark:] {
			benchNs[t.ID] = elapsed
		}
		lastMark = len(tables)
		lastStart = time.Now()
	}

	if run("fig7a") || run("fig7b") || run("height") {
		cfg := experiments.TreePropsConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{16, 64, 256, 1024}
			cfg.Trials = 1
		}
		fmt.Fprintf(os.Stderr, "tree properties (Fig. 7)...\n")
		all := experiments.TreeProperties(cfg)
		for _, t := range all {
			if run(t.ID) || (*exp == "all") {
				tables = append(tables, t)
			}
		}
	}
	stamp()
	if run("fig8a") {
		cfg := experiments.LoadBalanceConfig{Seed: *seed, Probing: true}
		if *quick {
			cfg.N = 128
		}
		fmt.Fprintf(os.Stderr, "message distribution (Fig. 8a)...\n")
		tables = append(tables, experiments.MessageDistribution(cfg))
	}
	stamp()
	if run("fig8b") {
		cfg := experiments.LoadBalanceConfig{Seed: *seed, Probing: true}
		if *quick {
			cfg.Sizes = []int{100, 400, 1000}
		}
		fmt.Fprintf(os.Stderr, "imbalance factors (Fig. 8b)...\n")
		tables = append(tables, experiments.Imbalance(cfg))
	}
	stamp()
	if run("fig9") {
		cfg := experiments.AccuracyConfig{Seed: *seed, SharedTrace: true}
		if *quick {
			cfg.N = 64
			cfg.Duration = 30 * time.Minute
		}
		fmt.Fprintf(os.Stderr, "monitoring accuracy (Fig. 9, n=%d)...\n", pick(cfg.N, 512))
		seriesT, scatterT, stats, err := experiments.MonitoringAccuracy(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  correlation=%.4f meanAbsErr=%.2f%% maxAbsErr=%.2f%% over %d slots\n",
			stats.Correlation, stats.MeanAbsPct, stats.MaxAbsPct, stats.Slots)
		tables = append(tables, seriesT, scatterT)
	}
	stamp()
	if run("churn") {
		cfg := experiments.ChurnConfig{Seed: *seed}
		if *quick {
			cfg.N = 24
			cfg.Events = 12
			cfg.TreeCounts = []int{1, 8, 32}
		}
		fmt.Fprintf(os.Stderr, "churn overhead...\n")
		t, err := experiments.ChurnOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	stamp()
	if run("ondemand") {
		cfg := experiments.OnDemandConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{32, 64}
		}
		fmt.Fprintf(os.Stderr, "on-demand query cost...\n")
		od, err := experiments.OnDemandCost(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, od)
	}
	stamp()
	if run("overhead") {
		cfg := experiments.LoadBalanceConfig{Seed: *seed, Probing: true}
		if *quick {
			cfg.Sizes = []int{100, 400, 1000}
		}
		fmt.Fprintf(os.Stderr, "message overhead...\n")
		tables = append(tables, experiments.MessageOverhead(cfg))
	}
	stamp()
	if run("widearea") {
		cfg := experiments.WideAreaConfig{Seed: *seed}
		if *quick {
			cfg.N = 64
			cfg.Slots = 40
			cfg.Holds = []time.Duration{10 * time.Millisecond, 150 * time.Millisecond}
		}
		fmt.Fprintf(os.Stderr, "wide-area scenario...\n")
		wa, err := experiments.WideArea(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, wa)
	}
	stamp()
	if run("multitree") {
		cfg := experiments.MultiTreeConfig{Seed: *seed}
		if *quick {
			cfg.N = 128
			cfg.Trees = []int{1, 16, 64}
		}
		fmt.Fprintf(os.Stderr, "multi-tree load balance...\n")
		mt, err := experiments.MultiTreeLoad(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, mt)
	}
	stamp()
	if run("ablation") {
		cfg := experiments.AblationConfig{Seed: *seed}
		if *quick {
			cfg.N = 48
			cfg.Slots = 60
			cfg.ListLens = []int{1, 4}
		}
		fmt.Fprintf(os.Stderr, "ablations (sync, successor list)...\n")
		syncT, err := experiments.SyncAblation(cfg)
		if err != nil {
			fatal(err)
		}
		succT, err := experiments.SuccessorListAblation(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, syncT, succT)
	}
	stamp()
	if run("maan") {
		cfg := experiments.MAANConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{64, 512}
			cfg.Resources = 128
		}
		fmt.Fprintf(os.Stderr, "MAAN query cost...\n")
		t, err := experiments.MAANQueryCost(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	stamp()
	if run("wirecodec") {
		fmt.Fprintf(os.Stderr, "wire codec cost...\n")
		wc, err := experiments.WireCodecCost(experiments.WireCodecConfig{})
		if err != nil {
			fatal(err)
		}
		tables = append(tables, wc)
	}
	stamp()
	if run("batching") {
		cfg := experiments.BatchingConfig{Seed: *seed}
		if *quick {
			cfg.N = 48
			cfg.Slots = 10
			cfg.Trees = []int{1, 16, 64}
		}
		fmt.Fprintf(os.Stderr, "send-machine batching...\n")
		bt, err := experiments.BatchingOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, bt)
	}
	stamp()
	if run("selfmon") {
		cfg := experiments.SelfMonitorConfig{Seed: *seed}
		if *quick {
			cfg.Slots = 16
		}
		fmt.Fprintf(os.Stderr, "self-monitoring plane...\n")
		sm, err := experiments.SelfMonitorOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, sm)
	}
	stamp()
	if run("overload") {
		cfg := experiments.OverloadAblationConfig{Seed: *seed}
		if *quick {
			cfg.N = 32
			cfg.Trees = 6
			cfg.Slots = 40
		}
		fmt.Fprintf(os.Stderr, "overload protection (ack-blackhole ablation)...\n")
		ot, err := experiments.OverloadAblation(cfg)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, ot)
	}
	stamp()
	if run("scale") {
		cfg := experiments.ScaleConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{10240}
			cfg.LiveN = 1024
			cfg.Slots = 4
		}
		fmt.Fprintf(os.Stderr, "large-n scale sweep (10k-65k snapshot + live ring)...\n")
		snapT, liveT, stats, err := experiments.Scale(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  live n=%d: %.0f events/sec, %.0f bytes/node, peak heap %.1f MB\n",
			stats.LiveN, stats.EventsPerSec, stats.BytesPerNode, float64(stats.PeakHeapBytes)/(1<<20))
		tables = append(tables, snapT, liveT)
	}
	stamp()

	if len(tables) == 0 {
		fatal(fmt.Errorf("unknown experiment %q (want all, fig7a, fig7b, height, fig8a, fig8b, fig9, churn, maan, ablation, multitree, overhead, widearea, ondemand, wirecodec, batching, selfmon, overload, scale)", *exp))
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			path := filepath.Join(*out, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			path := filepath.Join(*jsonDir, "BENCH_"+t.ID+".json")
			if err := writeBenchJSON(path, t, benchNs[t.ID]); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// benchRecord is the BENCH_<id>.json schema: one summary per table for
// machine-readable benchmark tracking. NsPerOp is the wall time of the
// experiment block that produced the table (blocks with several tables
// share it). Messages and ImbalanceFactor are present only for tables
// that report them.
type benchRecord struct {
	Name            string   `json:"name"`
	Title           string   `json:"title"`
	NsPerOp         int64    `json:"ns_per_op"`
	Rows            int      `json:"rows"`
	Messages        *uint64  `json:"messages,omitempty"`
	ImbalanceFactor *float64 `json:"imbalance_factor,omitempty"`
	// BytesPerOp/AllocsPerOp are the wirecodec table's headline row
	// (the hot-path UpdateMsg datagram): encoded bytes and encode-path
	// allocations per message through the compact codec. The ratios are
	// gob-over-wire for the same datagram — how much the compact codec
	// saves against the path it replaced.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	ByteRatio   *float64 `json:"gob_byte_ratio,omitempty"`
	AllocRatio  *float64 `json:"gob_alloc_ratio,omitempty"`
	// DatagramReduction is the batching table's headline row: datagrams
	// per slot unbatched over batched at the largest tree count.
	DatagramReduction *float64 `json:"datagram_reduction,omitempty"`
	// SelfMonOverheadPct is the selfmon table's headline row: extra dat.*
	// datagrams per slot (percent) with the self-monitoring plane on. The
	// same table's plane-on row also feeds ImbalanceFactor with the live,
	// DAT-served imbalance figure.
	SelfMonOverheadPct *float64 `json:"selfmon_overhead_pct,omitempty"`
	// Overload-ablation headline row (the protected mode): how many
	// times fewer datagrams were wasted on the blackholed victim than in
	// the unprotected run, how much of the offered load was shed, how
	// often breakers opened, and the p99 age of the oldest queued element
	// — all under the bounded-queue budget.
	WastedRetryReduction *float64 `json:"wasted_retry_reduction,omitempty"`
	ShedPct              *float64 `json:"shed_pct,omitempty"`
	BreakerOpens         *float64 `json:"breaker_opens,omitempty"`
	P99QueueAgeMs        *float64 `json:"p99_queue_age_ms,omitempty"`
	QueueHiWaterBytes    *float64 `json:"queue_hiwater_bytes,omitempty"`
	// Scale-sweep headline row (the scalelive table): wall-clock
	// simulator throughput and per-node memory footprint of the live
	// large-n ring under continuous aggregation — the numbers the arena
	// substrate (DESIGN.md §15) is accountable for.
	EventsPerSec *float64 `json:"events_per_sec,omitempty"`
	BytesPerNode *float64 `json:"bytes_per_node,omitempty"`
	PeakHeapMB   *float64 `json:"peak_heap_mb,omitempty"`
}

func writeBenchJSON(path string, t *experiments.Table, nsPerOp int64) error {
	rec := benchRecord{Name: t.ID, Title: t.Title, NsPerOp: nsPerOp, Rows: len(t.Rows)}
	rec.Messages = messageTotal(t)
	rec.ImbalanceFactor = imbalanceFactor(t)
	rec.BytesPerOp = headlineCell(t, "UpdateMsg", "wire_bytes_op")
	rec.AllocsPerOp = headlineCell(t, "UpdateMsg", "wire_allocs_op")
	rec.ByteRatio = headlineCell(t, "UpdateMsg", "byte_ratio")
	rec.AllocRatio = headlineCell(t, "UpdateMsg", "alloc_ratio")
	rec.DatagramReduction = lastRowCell(t, "reduction")
	rec.SelfMonOverheadPct = lastRowCell(t, "overhead_pct")
	rec.WastedRetryReduction = lastRowCell(t, "wasted_retry_reduction")
	rec.ShedPct = lastRowCell(t, "shed_pct")
	rec.BreakerOpens = lastRowCell(t, "breaker_opens")
	rec.P99QueueAgeMs = lastRowCell(t, "p99_queue_age_ms")
	rec.QueueHiWaterBytes = lastRowCell(t, "queue_hiwater_bytes")
	rec.EventsPerSec = lastRowCell(t, "events_per_sec")
	rec.BytesPerNode = lastRowCell(t, "bytes_per_node")
	rec.PeakHeapMB = lastRowCell(t, "peak_heap_mb")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// messageTotal sums every column whose header names a message count
// ("total_msgs", "messages", ...). Nil when the table has none.
func messageTotal(t *experiments.Table) *uint64 {
	var total uint64
	found := false
	for i, col := range t.Columns {
		if !strings.Contains(strings.ToLower(col), "msg") {
			continue
		}
		for _, row := range t.Rows {
			if i < len(row) {
				if v, err := strconv.ParseUint(row[i], 10, 64); err == nil {
					total += v
					found = true
				}
			}
		}
	}
	if !found {
		return nil
	}
	return &total
}

// imbalanceFactor extracts the headline imbalance number: the last-row
// value of a column named "imbalance", or — for the scheme-per-column
// Fig. 8(b) table — the balanced-local scheme at the largest network
// size. Nil when the table reports neither.
func imbalanceFactor(t *experiments.Table) *float64 {
	col := -1
	for i, c := range t.Columns {
		lc := strings.ToLower(c)
		if strings.Contains(lc, "imbalance") {
			col = i
		}
	}
	if col < 0 && t.ID == "fig8b" {
		for i, c := range t.Columns {
			if c == "balanced-local" {
				col = i
			}
		}
	}
	if col < 0 || len(t.Rows) == 0 {
		return nil
	}
	last := t.Rows[len(t.Rows)-1]
	if col >= len(last) {
		return nil
	}
	v, err := strconv.ParseFloat(last[col], 64)
	if err != nil {
		return nil
	}
	return &v
}

// headlineCell pulls one named cell out of a table: the value in
// column col of the row whose first cell equals rowKey. Nil when the
// table has no such row or column (every table except wirecodec).
func headlineCell(t *experiments.Table, rowKey, col string) *float64 {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return nil
	}
	for _, row := range t.Rows {
		if len(row) > ci && row[0] == rowKey {
			if v, err := strconv.ParseFloat(row[ci], 64); err == nil {
				return &v
			}
		}
	}
	return nil
}

// lastRowCell pulls the named column's value from a table's final row —
// for sweeps whose last row is the headline configuration. Nil when the
// table has no such column.
func lastRowCell(t *experiments.Table, col string) *float64 {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 || len(t.Rows) == 0 {
		return nil
	}
	last := t.Rows[len(t.Rows)-1]
	if ci >= len(last) {
		return nil
	}
	if v, err := strconv.ParseFloat(last[ci], 64); err == nil {
		return &v
	}
	return nil
}

func pick(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datbench:", err)
	os.Exit(1)
}
