// Command datlint runs the project's custom static-analysis suite over
// the module: ringcmp (no raw comparisons on ring identifiers),
// locksafe (no network calls or re-locking under a node mutex, seen
// through call summaries), simclock (no wall-clock time in
// simulation-facing packages), senderr (no silently dropped transport
// send errors), wirereg (wire-codec registration of transport
// payloads), detorder (no map iteration order escaping into sends or
// traces), hooklock (no obs hooks fired under node locks), and
// goroleak (protocol goroutines tied to shutdown). See DESIGN.md §7
// for each rule and its suppression pragma.
//
// Usage:
//
//	datlint [-list] [-analyzer name,...] [-json] [packages]
//
// Packages default to ./... resolved against the current directory.
// -analyzer selects a comma-separated subset of the suite; the
// unused-suppression audit then only judges pragmas naming selected
// analyzers. -json emits a stable machine-readable report on stdout
// for CI artifacts. The exit status is 1 when any finding or stale
// suppression survives, making it usable as a CI gate:
// go run ./cmd/datlint ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	sel := flag.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings and stale suppressions as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: datlint [-list] [-analyzer name,...] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *sel != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "datlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datlint:", err)
		os.Exit(2)
	}
	res := lint.RunAll(pkgs, analyzers)
	if *asJSON {
		if err := lint.EncodeJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "datlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		for _, s := range res.Stale {
			fmt.Println(s)
		}
	}
	if n := len(res.Diagnostics) + len(res.Stale); n > 0 {
		fmt.Fprintf(os.Stderr, "datlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
