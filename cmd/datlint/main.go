// Command datlint runs the project's custom static-analysis suite over
// the module: ringcmp (no raw comparisons on ring identifiers),
// locksafe (no network calls or re-locking under a node mutex),
// simclock (no wall-clock time in simulation-facing packages), and
// senderr (no silently dropped transport send errors). See DESIGN.md
// §7 for each rule and its suppression pragma.
//
// Usage:
//
//	datlint [-list] [packages]
//
// Packages default to ./... resolved against the current directory.
// The exit status is 1 when any finding survives suppression, making
// it usable as a CI gate: go run ./cmd/datlint ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: datlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.All)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "datlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
