// Command dattree builds a DAT over a synthetic overlay snapshot and
// renders it — as an indented ASCII tree, Graphviz DOT, or a property
// summary. Handy for inspecting how the basic and balanced construction
// rules shape the tree.
//
//	dattree -n 16 -ids even -scheme basic            # the paper's Fig. 2
//	dattree -n 16 -ids even -scheme balanced         # the paper's Fig. 5
//	dattree -n 512 -scheme balanced-local -dot t.dot # render with graphviz
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/ident"
)

func main() {
	var (
		n      = flag.Int("n", 16, "number of nodes")
		bits   = flag.Uint("bits", 0, "identifier space width (0: smallest that fits 4x n)")
		seed   = flag.Int64("seed", 1, "random seed")
		ids    = flag.String("ids", "even", "identifier placement: random, probed, even")
		scheme = flag.String("scheme", "balanced", "tree scheme: basic, balanced, balanced-local")
		attr   = flag.String("attr", "", "aggregate name (empty: root at identifier 0)")
		dot    = flag.String("dot", "", "write Graphviz DOT to this file")
		max    = flag.Int("max", 64, "maximum nodes in the ASCII rendering (0: all)")
	)
	flag.Parse()

	if *bits == 0 {
		b := uint(2)
		for (uint64(1) << b) < uint64(*n)*4 {
			b++
		}
		*bits = b
	}
	space := ident.New(*bits)
	rng := newRand(*seed)
	var nodeIDs []ident.ID
	switch *ids {
	case "random":
		nodeIDs = chord.RandomIDs(space, *n, rng)
	case "probed":
		nodeIDs = chord.ProbedIDs(space, *n, rng)
	case "even":
		nodeIDs = chord.EvenIDs(space, *n)
	default:
		log.Fatalf("dattree: unknown placement %q", *ids)
	}
	ring, err := chord.NewRing(space, nodeIDs)
	if err != nil {
		log.Fatal(err)
	}

	schemeVal, ok := map[string]core.Scheme{
		"basic": core.Basic, "balanced": core.Balanced, "balanced-local": core.BalancedLocal,
	}[*scheme]
	if !ok {
		log.Fatalf("dattree: unknown scheme %q", *scheme)
	}
	key := ident.ID(0)
	if *attr != "" {
		key = space.HashString(*attr)
	}
	tree := core.Build(ring, key, schemeVal)
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d bits=%d ids=%s scheme=%s key=%v root=%v\n",
		*n, *bits, *ids, *scheme, key, tree.Root)
	fmt.Printf("height=%d (bound %d)  max branching=%d (basic prediction %d)  avg branching=%.2f\n\n",
		tree.Height(), analysis.HeightBound(*n),
		tree.MaxBranching(), analysis.BasicMaxBranching(*n), tree.AvgBranching())
	if err := tree.RenderASCII(os.Stdout, *max); err != nil {
		log.Fatal(err)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.WriteDOT(f, *scheme); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *dot)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
