package dat_test

// One benchmark per table/figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`): each executes the corresponding
// experiment driver end to end on a reduced but shape-preserving
// configuration, so the bench suite regenerates every result the paper
// reports. Micro-benchmarks of the hot kernels (tree construction,
// routing, aggregation, the event engine, UDP RPC) follow.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	dat "repro"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ident"
	"repro/internal/rpcudp"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// --- Figure benchmarks -------------------------------------------------

// BenchmarkFig7aMaxBranching regenerates Fig. 7(a): maximal branching
// factor vs network size for basic/balanced schemes and random/probed
// placement.
func BenchmarkFig7aMaxBranching(b *testing.B) {
	cfg := experiments.TreePropsConfig{Sizes: []int{16, 64, 256, 1024}, Trials: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		tables := experiments.TreeProperties(cfg)
		if tables[0].ID != "fig7a" || len(tables[0].Rows) != 4 {
			b.Fatal("fig7a table malformed")
		}
	}
}

// BenchmarkFig7bAvgBranching regenerates Fig. 7(b): average branching
// factor vs network size.
func BenchmarkFig7bAvgBranching(b *testing.B) {
	cfg := experiments.TreePropsConfig{Sizes: []int{16, 64, 256}, Trials: 1, Seed: 2}
	for i := 0; i < b.N; i++ {
		tables := experiments.TreeProperties(cfg)
		if tables[1].ID != "fig7b" {
			b.Fatal("fig7b table malformed")
		}
	}
}

// BenchmarkTreeHeight regenerates the height analysis of §3.3/§3.5.
func BenchmarkTreeHeight(b *testing.B) {
	cfg := experiments.TreePropsConfig{Sizes: []int{16, 64, 256}, Trials: 1, Seed: 3}
	for i := 0; i < b.N; i++ {
		tables := experiments.TreeProperties(cfg)
		if tables[2].ID != "height" {
			b.Fatal("height table malformed")
		}
	}
}

// BenchmarkFig8aMessageDistribution regenerates Fig. 8(a): aggregation
// message counts by node rank at n=512.
func BenchmarkFig8aMessageDistribution(b *testing.B) {
	cfg := experiments.LoadBalanceConfig{N: 512, Seed: 1, Probing: true}
	for i := 0; i < b.N; i++ {
		t := experiments.MessageDistribution(cfg)
		if t.ID != "fig8a" {
			b.Fatal("fig8a malformed")
		}
	}
}

// BenchmarkFig8bImbalance regenerates Fig. 8(b): imbalance factor vs
// network size.
func BenchmarkFig8bImbalance(b *testing.B) {
	cfg := experiments.LoadBalanceConfig{Sizes: []int{100, 400, 1000}, Seed: 1, Probing: true}
	for i := 0; i < b.N; i++ {
		t := experiments.Imbalance(cfg)
		if t.ID != "fig8b" {
			b.Fatal("fig8b malformed")
		}
	}
}

// BenchmarkFig9MonitoringAccuracy regenerates Fig. 9 on a reduced grid:
// a live 64-node simulated deployment replaying the CPU trace for 20
// simulated minutes.
func BenchmarkFig9MonitoringAccuracy(b *testing.B) {
	cfg := experiments.AccuracyConfig{
		N: 64, Duration: 20 * time.Minute, Seed: 1, SharedTrace: true,
	}
	for i := 0; i < b.N; i++ {
		_, _, stats, err := experiments.MonitoringAccuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Correlation < 0.9 {
			b.Fatalf("accuracy regressed: correlation %v", stats.Correlation)
		}
	}
}

// BenchmarkChurnOverhead regenerates the churn-cost comparison between
// implicit DATs and explicit-membership trees.
func BenchmarkChurnOverhead(b *testing.B) {
	cfg := experiments.ChurnConfig{N: 24, Events: 12, TreeCounts: []int{1, 8, 32}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ChurnOverhead(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMAANRangeQuery regenerates the §2.2 query-cost table.
func BenchmarkMAANRangeQuery(b *testing.B) {
	cfg := experiments.MAANConfig{
		Sizes: []int{64, 512}, Selectivities: []float64{0.01, 0.1},
		Resources: 128, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MAANQueryCost(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel benchmarks --------------------------------------------------

func benchRing(b *testing.B, n int) *chord.Ring {
	b.Helper()
	space := ident.New(32)
	rng := rand.New(rand.NewSource(7))
	ring, err := chord.NewRing(space, chord.RandomIDs(space, n, rng))
	if err != nil {
		b.Fatal(err)
	}
	return ring
}

// BenchmarkBuildBasicTree4096 measures snapshot construction of a basic
// DAT over 4096 nodes.
func BenchmarkBuildBasicTree4096(b *testing.B) {
	ring := benchRing(b, 4096)
	key := ring.Space().HashString("cpu")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(ring, key, core.Basic)
	}
}

// BenchmarkBuildBalancedTree4096 measures snapshot construction of a
// balanced DAT over 4096 nodes.
func BenchmarkBuildBalancedTree4096(b *testing.B) {
	ring := benchRing(b, 4096)
	key := ring.Space().HashString("cpu")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(ring, key, core.Balanced)
	}
}

// BenchmarkRingRoute measures one greedy Chord route on a 4096-node
// snapshot.
func BenchmarkRingRoute(b *testing.B) {
	ring := benchRing(b, 4096)
	rng := rand.New(rand.NewSource(9))
	ids := ring.IDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ids[rng.Intn(len(ids))]
		key := ring.Space().Wrap(rng.Uint64())
		ring.Route(from, key)
	}
}

// BenchmarkAggregateUp4096 measures one full aggregation round over a
// 4096-node balanced tree.
func BenchmarkAggregateUp4096(b *testing.B) {
	ring := benchRing(b, 4096)
	key := ring.Space().HashString("cpu")
	tree := core.Build(ring, key, core.Balanced)
	values := make(map[ident.ID]float64, ring.N())
	for i, id := range ring.IDs() {
		values[id] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _ := tree.AggregateUp(values)
		if agg.Count != 4096 {
			b.Fatal("incomplete round")
		}
	}
}

// BenchmarkProbedIDs1024 measures identifier-probing placement.
func BenchmarkProbedIDs1024(b *testing.B) {
	space := ident.New(32)
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		chord.ProbedIDs(space, 1024, rng)
	}
}

// BenchmarkSimEngine measures raw discrete-event throughput.
func BenchmarkSimEngine(b *testing.B) {
	eng := sim.NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		eng.Schedule(time.Millisecond, tick)
	}
	eng.Schedule(time.Millisecond, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkSimGridSlot measures one aggregation slot of a live 256-node
// simulated deployment (maintenance plus one full round of updates).
func BenchmarkSimGridSlot(b *testing.B) {
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N: 256, Seed: 1, IDs: dat.ProbedIDs,
		Sensor: func(int, time.Duration, string) (float64, bool) { return 1, true },
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := grid.Monitor("cpu", time.Second); err != nil {
		b.Fatal(err)
	}
	grid.Run(10 * time.Second) // warm-up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.Run(time.Second)
	}
}

// BenchmarkUDPRoundTrip measures one request/response over the real UDP
// RPC layer on loopback.
func BenchmarkUDPRoundTrip(b *testing.B) {
	server, err := rpcudp.Listen("127.0.0.1:0", rpcudp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	server.Handle(func(r *transport.Request) { r.Reply(chord.PingResp{}) })
	client, err := rpcudp.Listen("127.0.0.1:0", rpcudp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		client.Call(server.Addr(), chord.MsgPing, chord.PingReq{}, func(_ any, err error) {
			if err != nil {
				b.Error(err)
			}
			wg.Done()
		})
		wg.Wait()
	}
}

// BenchmarkSyncAblation regenerates the aggregation-synchronization
// ablation table.
func BenchmarkSyncAblation(b *testing.B) {
	cfg := experiments.AblationConfig{N: 48, Slots: 40, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SyncAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuccessorListAblation regenerates the successor-list healing
// ablation table.
func BenchmarkSuccessorListAblation(b *testing.B) {
	cfg := experiments.AblationConfig{N: 48, ListLens: []int{1, 4}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SuccessorListAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTreeLoad regenerates the §3.2 multi-tree load-balance
// table.
func BenchmarkMultiTreeLoad(b *testing.B) {
	cfg := experiments.MultiTreeConfig{N: 256, Trees: []int{1, 16, 64}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiTreeLoad(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageOverhead regenerates the per-node overhead table.
func BenchmarkMessageOverhead(b *testing.B) {
	cfg := experiments.LoadBalanceConfig{Sizes: []int{100, 400}, Seed: 1, Probing: true}
	for i := 0; i < b.N; i++ {
		_ = experiments.MessageOverhead(cfg)
	}
}

// BenchmarkWideArea regenerates the wide-area hold sweep on a reduced
// grid.
func BenchmarkWideArea(b *testing.B) {
	cfg := experiments.WideAreaConfig{
		N: 48, Slots: 20, Seed: 1,
		Holds: []time.Duration{10 * time.Millisecond, 200 * time.Millisecond},
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WideArea(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnDemandCost regenerates the on-demand query cost table.
func BenchmarkOnDemandCost(b *testing.B) {
	cfg := experiments.OnDemandConfig{Sizes: []int{32, 64}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OnDemandCost(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireVsGob pits the compact wire codec against the
// per-datagram gob path it replaced, on the hot-path message of the
// continuous protocol: a full UpdateMsg envelope (one datagram per
// child per slot). Run with -benchmem; bytes/op below is the encoded
// datagram size, not heap traffic.
func BenchmarkWireVsGob(b *testing.B) {
	env := wire.Envelope{
		Kind: 2, Seq: 99, Type: core.MsgUpdate, From: "10.0.0.7:9001",
		Payload: core.UpdateMsg{
			Key: 0x42, Epoch: 812,
			Agg:   core.Aggregate{Sum: 812.5, SumSq: 66430.25, Count: 64, Min: 0.25, Max: 31.5, Coverage: 0.984},
			Nodes: 64, Height: 3, Slot: int64(15 * time.Second),
			Sender: chord.NodeRef{ID: 0xBEEF, Addr: "10.0.0.7:9001"},
			Trace:  0xDEADBEEF, SentAt: 1700000000123456789, Seq: 4,
		},
	}
	codecs := []struct {
		name  string
		codec wire.Codec
	}{
		{"wire", wire.Compact{}},
		{"gob", wire.Legacy{}},
	}
	for _, c := range codecs {
		b.Run(c.name+"/encode", func(b *testing.B) {
			data, _, err := c.codec.Append(nil, &env)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 0, 2*len(data))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.codec.Append(buf[:0], &env); err != nil {
					b.Fatal(err)
				}
			}
			// After ResetTimer: it deletes user-reported metrics.
			b.ReportMetric(float64(len(data)), "encoded-bytes/op")
		})
		b.Run(c.name+"/decode", func(b *testing.B) {
			data, _, err := c.codec.Append(nil, &env)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.codec.Decode(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(data)), "encoded-bytes/op")
		})
	}
}

// BenchmarkWireCodecTable regenerates the wirecodec experiment table.
func BenchmarkWireCodecTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WireCodecCost(experiments.WireCodecConfig{Iters: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
