package dat_test

// Live mixed-version interop test: a ring of real UDP peers where the
// modern members batch their updates through the compact wire codec
// while one member speaks like a deployment from before either change —
// legacy whole-envelope gob frames, no send machine. Monitoring several
// attributes at once forces the modern side to coalesce cross-tree
// updates into multi-element batches; the ring must still converge on
// full-coverage aggregates in both directions, with the telemetry
// proving that batching, the gob fallback and the legacy inbound path
// all actually fired.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	dat "repro"
	"repro/internal/ident"
	"repro/internal/obs"
)

// scrapeMetrics fetches the observer's /metrics page as text.
func scrapeMetrics(t *testing.T, o *obs.Observer) string {
	t.Helper()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricSum sums every sample of the named family (all label sets), so
// counters read the same whether or not they carry labels.
func metricSum(t *testing.T, metrics, name string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer family sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("metric %s: bad sample line %q", name, line)
		}
		sum += v
	}
	return sum
}

// pickAttrs chooses monitored attribute names whose rendezvous keys
// spread root duty so that every peer is a NON-root sender in at least
// minNonRoot trees. Peer identifiers hash from ephemeral UDP ports, so
// with a handful of nodes one peer can own most of the ring and root
// every tree of a fixed attribute list — leaving it nothing to send and
// the sender-side assertions vacuous. Selecting against the actual ring
// makes them deterministic.
func pickAttrs(t *testing.T, peerIDs []uint64, minAttrs, minNonRoot int) []string {
	t.Helper()
	space := ident.New(32)
	const ringMask = 1<<32 - 1
	rootOf := func(key uint64) int {
		best, bestDist := -1, uint64(ringMask)+1
		for i, id := range peerIDs {
			if d := (id - key) & ringMask; d < bestDist {
				best, bestDist = i, d
			}
		}
		return best
	}
	nonRoot := make([]int, len(peerIDs))
	var attrs []string
	for i := 0; i < 256; i++ {
		attr := fmt.Sprintf("attr-%02d", i)
		root := rootOf(uint64(space.HashString(attr)))
		for p := range nonRoot {
			if p != root {
				nonRoot[p]++
			}
		}
		attrs = append(attrs, attr)
		enough := len(attrs) >= minAttrs
		for _, c := range nonRoot {
			if c < minNonRoot {
				enough = false
			}
		}
		if enough {
			return attrs
		}
	}
	t.Fatalf("no attribute set spreads root duty over peers %v", peerIDs)
	return nil
}

func TestLiveBatchedLegacyInterop(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	modernObs := obs.NewObserver(256)
	legacyObs := obs.NewObserver(256)
	mk := func(name string, o *obs.Observer, legacy bool) *dat.Peer {
		cfg := dat.PeerConfig{
			Listen:     "127.0.0.1:0",
			Name:       name,
			Stabilize:  40 * time.Millisecond,
			FixFingers: 60 * time.Millisecond,
			Ping:       100 * time.Millisecond,
			Observer:   o,
		}
		if legacy {
			cfg.LegacyWire = true
			cfg.Batch = dat.BatchConfig{Disable: true}
		}
		p, err := dat.NewPeer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}

	boot := mk("modern0", modernObs, false)
	boot.Create()
	peers := []*dat.Peer{boot}
	for i := 1; i < 3; i++ {
		p := mk("modern"+string(rune('0'+i)), nil, false)
		if err := p.Join(boot.Addr()); err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	old := mk("legacy", legacyObs, true)
	if err := old.Join(boot.Addr()); err != nil {
		t.Fatal(err)
	}
	peers = append(peers, old)

	// Several concurrent trees in which every peer sends: the senders'
	// per-tree parents collapse onto at most three destinations, so by
	// pigeonhole the modern send machines emit multi-element batches.
	ids := make([]uint64, len(peers))
	for i, p := range peers {
		ids[i] = p.ID()
	}
	attrs := pickAttrs(t, ids, 6, 4)

	for _, p := range peers {
		for _, attr := range attrs {
			attr := attr
			p.AddSensor(attr, func() (float64, bool) { return 1, true })
			if err := p.StartMonitor(attr, 100*time.Millisecond, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every tree must reach full coverage: the legacy peer's plain
	// updates land on batching roots, and batched updates land on the
	// legacy peer whenever it parents a subtree.
	deadline := time.Now().Add(30 * time.Second)
	covered := make(map[string]bool, len(attrs))
	for len(covered) < len(attrs) {
		for _, attr := range attrs {
			if covered[attr] {
				continue
			}
			for _, p := range peers {
				if agg, ok := p.LatestResult(attr); ok && agg.Count == uint64(len(peers)) {
					covered[attr] = true
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d attributes reached full coverage: %v", len(covered), len(attrs), covered)
		}
		time.Sleep(50 * time.Millisecond)
	}

	modern := scrapeMetrics(t, modernObs)
	legacy := scrapeMetrics(t, legacyObs)

	// The modern node coalesced: flushes happened, and at least one
	// flush carried more than a single element (bytes are only counted
	// as saved when two or more messages share a datagram).
	if v := metricSum(t, modern, "dat_batch_flushes_total"); v == 0 {
		t.Error("modern node recorded no send-machine flushes")
	}
	if v := metricSum(t, modern, "dat_batch_bytes_saved_total"); v == 0 {
		t.Error("modern node never coalesced two updates into one datagram")
	}
	// Per-element acks completed delivery chains on both sides.
	if v := metricSum(t, modern, `dat_update_deliveries_total{outcome="ok"}`); v == 0 {
		t.Error("modern node completed no acked deliveries")
	}
	if v := metricSum(t, legacy, `dat_update_deliveries_total{outcome="ok"}`); v == 0 {
		t.Error("legacy node completed no acked deliveries")
	}
	// The legacy peer never batches — coalescing is the sender's choice.
	if v := metricSum(t, legacy, "dat_batch_flushes_total"); v != 0 {
		t.Errorf("legacy node flushed %v batches with batching disabled", v)
	}
	// Wire telemetry: the legacy peer encodes everything through the
	// gob fallback, and the modern node sees whole-envelope gob frames
	// arrive on its inbound path.
	if v := metricSum(t, legacy, "rpcudp_wire_fallback_total"); v == 0 {
		t.Error("legacy node sent no gob-fallback frames")
	}
	if v := metricSum(t, modern, "rpcudp_wire_legacy_frames_total"); v == 0 {
		t.Error("modern node received no legacy frames")
	}
}
