# Build, test, and static-analysis entry points. `make ci` is what the
# GitHub Actions workflow runs; keep the two in sync.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint lint-json lint-fixtures test race fuzz datcheck datcheck-faults datcheck-overload datcheck-long bench-json bench-batching bench-selfmon bench-overload bench-scale obs-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# datlint: the project-specific analyzer suite (ringcmp, locksafe,
# simclock, senderr, wirereg, detorder, hooklock, goroleak). See
# DESIGN.md §7. Exits non-zero on any finding or stale ignore pragma.
lint:
	$(GO) run ./cmd/datlint ./...

# Machine-readable findings for CI artifacts; fails like `lint` but
# always leaves datlint.json behind for upload.
lint-json:
	$(GO) run ./cmd/datlint -json ./... > datlint.json

# Fast re-run of the analyzer fixture suite while iterating on a new
# analyzer or fixture (-short skips the whole-repo lint gate, which
# `lint` covers separately).
lint-fixtures:
	$(GO) test -short ./internal/lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# datcheck: the deterministic simulation-testing harness (DESIGN.md §8).
# The default target runs the fixed PR-gating seed corpus; datcheck-long
# sweeps DATCHECK_SEEDS fresh seeds from DATCHECK_BASE (the nightly
# workflow passes a date-derived base so coverage grows over time).
# Replay a failure with:
#   go test ./internal/datcheck -run TestDatcheckReplay -datcheck.seed=N -v
DATCHECK_SEEDS ?= 25
DATCHECK_BASE ?= 1000000
datcheck:
	$(GO) test ./internal/datcheck -v -run TestDatcheckCorpus

# datcheck-faults: the delivery-fault profile — targeted mid-round
# parent/root crashes with in-chaos no-lost-subtrees probes, swept over
# DATCHECK_FAULT_SEEDS seeds above datcheck.FaultSeedBase — plus the
# batching-fault profile: crashes inside the send machine's coalescing
# window (DATCHECK_BATCH_SEEDS seeds above datcheck.BatchSeedBase) and
# the paired-seed batched-vs-unbatched equivalence check.
DATCHECK_FAULT_SEEDS ?= 8
DATCHECK_BATCH_SEEDS ?= 6
datcheck-faults:
	$(GO) test ./internal/datcheck -v \
		-run 'TestDatcheckFaults|TestDatcheckBatchFaults|TestDatcheckBatchEquivalence' \
		-datcheck.faultseeds $(DATCHECK_FAULT_SEEDS) \
		-datcheck.batchseeds $(DATCHECK_BATCH_SEEDS)

# datcheck-overload: the overload-protection profile — slow-parent,
# ack-blackhole, and burst-fanin stimuli under tight queue budgets
# (seeds above datcheck.OverloadSeedBase), with budget/never-shed-control
# invariants checked at every settle, plus the paired-seed
# protection-on-vs-off equivalence check.
DATCHECK_OVERLOAD_SEEDS ?= 6
datcheck-overload:
	$(GO) test ./internal/datcheck -v \
		-run 'TestDatcheckOverloadFaults|TestDatcheckOverloadEquivalence' \
		-datcheck.overloadseeds $(DATCHECK_OVERLOAD_SEEDS)

datcheck-long:
	$(GO) test -race ./internal/datcheck -v -run TestDatcheckLong \
		-datcheck.long -datcheck.seeds $(DATCHECK_SEEDS) -datcheck.base $(DATCHECK_BASE) \
		-datcheck.artifacts $(CURDIR)/datcheck-artifacts -timeout 45m

# Machine-readable benchmark summaries: one BENCH_<id>.json per
# experiment table (ns/op, messages, imbalance factor) under BENCH_DIR.
BENCH_DIR ?= bench
bench-json:
	$(GO) run ./cmd/datbench -quick -json $(BENCH_DIR)

# bench-batching: the send-machine ablation — datagrams per slot with
# coalescing on vs off over a multi-tree monitoring run (DESIGN.md §12).
bench-batching:
	$(GO) run ./cmd/datbench -quick -exp batching -json $(BENCH_DIR)

# bench-overload: the overload-protection ablation — a gray-failure ack
# blackhole plus a fan-in burst, protection off vs on: wasted retry
# datagrams, queue high-water, shed percentage, breaker opens, p99 queue
# age. Runs at full size (not -quick): the ~2s full window is what lets
# the breakers' probe backoff reach steady state.
bench-overload:
	$(GO) run ./cmd/datbench -exp overload -json $(BENCH_DIR)

# bench-selfmon: the self-monitoring plane ablation — dat.* datagrams
# per slot with the dat.load.* trees off vs on at 48 nodes, plus the
# live imbalance factor the plane reports (DESIGN.md §13).
bench-selfmon:
	$(GO) run ./cmd/datbench -quick -exp selfmon -json $(BENCH_DIR)

# bench-scale: the arena-substrate scale sweep (DESIGN.md §15) — §3
# tree bounds asserted on 10240- and 65536-node snapshot rings, plus a
# live 10240-node ring under continuous aggregation measured for
# simulator throughput (events_per_sec) and per-node memory
# (bytes_per_node, peak heap). Runs at full size (not -quick): the
# 10k-node live ring is the point.
bench-scale:
	$(GO) run ./cmd/datbench -exp scale -json $(BENCH_DIR)

# Boot a live datnode with -obs.addr and verify /metrics, /healthz and
# the debug pages respond with non-empty 200s (DESIGN.md §9).
obs-smoke:
	bash scripts/obs-smoke.sh

# Short, bounded runs of every fuzz target — a smoke pass, not a soak.
# Each -fuzz invocation must target a single package, hence the loop.
fuzz:
	$(GO) test ./internal/ident -run '^$$' -fuzz FuzzSpaceArithmetic -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ident -run '^$$' -fuzz FuzzLocalityHashMonotone -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chord -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME)

ci: build vet lint test race fuzz bench-selfmon bench-overload bench-scale obs-smoke
