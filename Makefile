# Build, test, and static-analysis entry points. `make ci` is what the
# GitHub Actions workflow runs; keep the two in sync.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race fuzz ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# datlint: the project-specific analyzer suite (ringcmp, locksafe,
# simclock, senderr). See DESIGN.md §7. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/datlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short, bounded runs of every fuzz target — a smoke pass, not a soak.
# Each -fuzz invocation must target a single package, hence the loop.
fuzz:
	$(GO) test ./internal/ident -run '^$$' -fuzz FuzzSpaceArithmetic -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ident -run '^$$' -fuzz FuzzLocalityHashMonotone -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chord -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME)

ci: build vet lint test race fuzz
