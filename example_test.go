package dat_test

import (
	"fmt"
	"time"

	dat "repro"
)

// ExampleNewTopology analyses tree shape without running any protocol:
// the balanced construction keeps branching constant where plain Chord
// routing concentrates load near the root.
func ExampleNewTopology() {
	topo, err := dat.NewTopology(32, 1024, dat.ProbedIDs, 1)
	if err != nil {
		panic(err)
	}
	basic := topo.Tree("cpu-usage", dat.Basic)
	balanced := topo.Tree("cpu-usage", dat.Balanced)
	fmt.Printf("basic:    height=%d max-branching=%d\n", basic.Height(), basic.MaxBranching())
	fmt.Printf("balanced: height=%d max-branching=%d\n", balanced.Height(), balanced.MaxBranching())
	// Output:
	// basic:    height=10 max-branching=10
	// balanced: height=10 max-branching=4
}

// ExampleTopology_AggregateOnce runs one complete aggregation round over
// a snapshot tree and reads the classic aggregate functions from the
// merged summary.
func ExampleTopology_AggregateOnce() {
	topo, err := dat.NewTopology(16, 64, dat.EvenIDs, 1)
	if err != nil {
		panic(err)
	}
	values := make([]float64, 64)
	for i := range values {
		values[i] = float64(i)
	}
	agg, loads := topo.AggregateOnce("load", dat.Balanced, values)
	var msgs uint64
	for _, l := range loads {
		msgs += l
	}
	fmt.Printf("count=%d sum=%.0f avg=%.1f min=%.0f max=%.0f messages=%d\n",
		agg.Count, agg.Sum, agg.Avg(), agg.Min, agg.Max, msgs)
	// Output:
	// count=64 sum=2016 avg=31.5 min=0 max=63 messages=63
}

// ExampleNewSimGrid runs a live 32-node deployment in virtual time and
// monitors a global aggregate continuously.
func ExampleNewSimGrid() {
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:    32,
		Seed: 1,
		IDs:  dat.ProbedIDs,
		Sensor: func(node int, _ time.Duration, _ string) (float64, bool) {
			return float64(node), true
		},
	})
	if err != nil {
		panic(err)
	}
	latest, err := grid.Monitor("cpu-usage", time.Second)
	if err != nil {
		panic(err)
	}
	grid.Run(15 * time.Second)
	_, agg, _ := latest()
	fmt.Printf("nodes=%d avg=%.1f\n", agg.Count, agg.Avg())
	// Output:
	// nodes=32 avg=15.5
}
