package dat_test

import (
	"math"
	"testing"
	"time"

	dat "repro"
)

func TestTopologyTreesAndAggregation(t *testing.T) {
	topo, err := dat.NewTopology(32, 256, dat.ProbedIDs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 256 {
		t.Fatalf("N = %d", topo.N())
	}
	if r := topo.GapRatio(); r <= 0 || r > 16 {
		t.Fatalf("probed gap ratio = %v", r)
	}
	basic := topo.Tree("cpu-usage", dat.Basic)
	balanced := topo.Tree("cpu-usage", dat.Balanced)
	if err := basic.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := balanced.Validate(); err != nil {
		t.Fatal(err)
	}
	if balanced.MaxBranching() >= basic.MaxBranching() {
		t.Fatalf("balanced (%d) not flatter than basic (%d)",
			balanced.MaxBranching(), basic.MaxBranching())
	}

	values := make([]float64, 256)
	var wantSum float64
	for i := range values {
		values[i] = float64(i)
		wantSum += float64(i)
	}
	agg, loads := topo.AggregateOnce("cpu-usage", dat.Balanced, values)
	if agg.Count != 256 || math.Abs(agg.Sum-wantSum) > 1e-6 {
		t.Fatalf("aggregate = %v", agg)
	}
	var total uint64
	for _, l := range loads {
		total += l
	}
	if total != 255 {
		t.Fatalf("messages = %d, want n-1", total)
	}
}

func TestTopologyBadInput(t *testing.T) {
	if _, err := dat.NewTopology(4, 1000, dat.EvenIDs, 1); err == nil {
		t.Error("1000 nodes in a 4-bit space accepted")
	}
}

func TestSimGridMonitorAndQuery(t *testing.T) {
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:    48,
		Seed: 9,
		IDs:  dat.ProbedIDs,
		Sensor: func(node int, _ time.Duration, attr string) (float64, bool) {
			if attr != "cpu-usage" {
				return 0, false
			}
			return float64(node), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	latest, err := grid.Monitor("cpu-usage", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	grid.Run(15 * time.Second)
	_, agg, ok := latest()
	if !ok || agg.Count != 48 {
		t.Fatalf("monitor: ok=%v agg=%v", ok, agg)
	}
	if agg.Avg() != 23.5 {
		t.Fatalf("avg = %v, want 23.5", agg.Avg())
	}

	q, err := grid.Query(3, "cpu-usage", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count != 48 {
		t.Fatalf("on-demand count = %d", q.Count)
	}

	tree := grid.Tree("cpu-usage", dat.BalancedLocal)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimGridSelfMonitor(t *testing.T) {
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N:       32,
		Seed:    5,
		SelfMon: dat.SelfMonConfig{Enable: true, Slot: time.Second},
		Sensor: func(node int, _ time.Duration, attr string) (float64, bool) {
			return 1, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grid.ClusterLoad(); ok {
		t.Fatal("cluster load reported before any monitoring round")
	}
	if _, err := grid.Monitor("cpu-usage", time.Second); err != nil {
		t.Fatal(err)
	}
	grid.Run(15 * time.Second)
	s, ok := grid.ClusterLoad()
	if !ok {
		t.Fatal("no cluster load summary after 15s")
	}
	if s.Nodes != 32 {
		t.Fatalf("summary counts %d nodes, want 32", s.Nodes)
	}
	if s.Sum <= 0 || s.Min > s.Mean || s.Mean > s.Max || s.Imbalance < 1 {
		t.Fatalf("incoherent summary %+v", s)
	}

	// The plane is off by default: no dat.load.* interception, no summary.
	plain, err := dat.NewSimGrid(dat.SimGridConfig{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(5 * time.Second)
	if _, ok := plain.ClusterLoad(); ok {
		t.Fatal("cluster load reported with self-monitoring disabled")
	}
}

func TestSimGridChurnAPI(t *testing.T) {
	grid, err := dat.NewSimGrid(dat.SimGridConfig{
		N: 16, Seed: 4,
		Sensor: func(int, time.Duration, string) (float64, bool) { return 1, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	latest, err := grid.Monitor("load", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	grid.Run(10 * time.Second)
	if n := grid.N(); n != 16 {
		t.Fatalf("N = %d", n)
	}
	grid.Crash(2)
	grid.Leave(5)
	idx := grid.Join()
	if idx != 16 {
		t.Fatalf("new node index = %d", idx)
	}
	grid.Run(45 * time.Second)
	if n := grid.N(); n != 15 {
		t.Fatalf("post-churn N = %d, want 15", n)
	}
	_, agg, ok := latest()
	if !ok {
		t.Fatal("no result after churn")
	}
	// The joiner has no continuous registration (Monitor ran before it
	// joined), so 14 of the 15 live nodes contribute.
	if agg.Count < 13 || agg.Count > 15 {
		t.Fatalf("post-churn count = %d", agg.Count)
	}
}

func TestPeerLifecycleOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	attrs := []dat.Attribute{
		{Name: "cpu-usage", Min: 0, Max: 100},
		{Name: "memory-size", Min: 0, Max: 4096},
	}
	mk := func(name string, cpu float64) *dat.Peer {
		p, err := dat.NewPeer(dat.PeerConfig{
			Listen:     "127.0.0.1:0",
			Name:       name,
			Attributes: attrs,
			Stabilize:  40 * time.Millisecond,
			FixFingers: 60 * time.Millisecond,
			Ping:       100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		p.AddSensor("cpu-usage", func() (float64, bool) { return cpu, true })
		p.AddSensor("memory-size", func() (float64, bool) { return 1024, true })
		return p
	}

	peers := []*dat.Peer{mk("host0", 10)}
	peers[0].Create()
	for i := 1; i < 6; i++ {
		p := mk("host"+string(rune('0'+i)), float64(10*(i+1)))
		if err := p.Join(peers[0].Addr()); err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}

	for _, p := range peers {
		if err := p.StartMonitor("cpu-usage", 100*time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
		if err := p.Announce(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for the ring to converge and the aggregate to cover all six.
	deadline := time.Now().Add(20 * time.Second)
	covered := false
	for time.Now().Before(deadline) {
		for _, p := range peers {
			if agg, ok := p.LatestResult("cpu-usage"); ok && agg.Count == 6 {
				covered = true
				if agg.Sum != 10+20+30+40+50+60 {
					t.Fatalf("sum = %v", agg.Sum)
				}
			}
		}
		if covered {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !covered {
		t.Fatal("continuous aggregate never covered all peers")
	}

	// On-demand query from a non-root peer.
	agg, err := peers[2].Query("cpu-usage", 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 6 {
		t.Fatalf("query count = %d", agg.Count)
	}

	// Resource discovery: hosts with cpu-usage in [25, 100].
	found, err := peers[4].FindResources([]dat.Predicate{
		{Attr: "cpu-usage", Lo: 25, Hi: 100},
		{Attr: "memory-size", Lo: 512, Hi: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 4 { // 30, 40, 50, 60
		names := ""
		for _, r := range found {
			names += r.Name + " "
		}
		t.Fatalf("found %d resources (%s), want 4", len(found), names)
	}

	// Graceful departure does not disturb the rest.
	if err := peers[5].Leave(); err != nil {
		t.Fatal(err)
	}
}

func TestPeerConfigValidation(t *testing.T) {
	if _, err := dat.NewPeer(dat.PeerConfig{}); err == nil {
		t.Error("missing Listen accepted")
	}
	if _, err := dat.NewPeer(dat.PeerConfig{
		Listen:     "127.0.0.1:0",
		Attributes: []dat.Attribute{{Name: "", Min: 0, Max: 1}},
	}); err == nil {
		t.Error("bad schema accepted")
	}
	p, err := dat.NewPeer(dat.PeerConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Addr() == "" || p.ID() == 0 && p.ID() == 1 {
		t.Error("degenerate peer identity")
	}
	if err := p.Announce(time.Second); err == nil {
		t.Error("Announce without schema accepted")
	}
	if _, err := p.FindResources(nil); err == nil {
		t.Error("FindResources without schema accepted")
	}
	if err := p.Close(); err != nil {
		t.Error("double close:", err)
	}
}

func TestGenerateCPUTrace(t *testing.T) {
	s := dat.GenerateCPUTrace("cpu", 3)
	if s.Len() != 480 {
		t.Fatalf("len = %d", s.Len())
	}
	min, max, _ := s.Stats()
	if min < 0 || max > 100 {
		t.Fatal("trace out of range")
	}
}
