#!/usr/bin/env bash
# Observability smoke test: boot one live datnode with -obs.addr, scrape
# /metrics and /healthz, and fail on a non-200 status or empty body.
# CI runs this after the unit suites; run it locally with `make obs-smoke`.
set -euo pipefail

OBS_ADDR=${OBS_ADDR:-127.0.0.1:19090}
NODE_ADDR=${NODE_ADDR:-127.0.0.1:19000}
BIN=$(mktemp -d)/datnode
LOG=$(mktemp)

cleanup() {
    [[ -n "${NODE_PID:-}" ]] && kill "$NODE_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -f "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/datnode
"$BIN" -listen "$NODE_ADDR" -create -synthetic -slot 1s -obs.addr "$OBS_ADDR" 2>"$LOG" &
NODE_PID=$!

# Wait for the endpoint to come up (the node binds it before joining).
for _ in $(seq 1 50); do
    if curl -sf -o /dev/null "http://$OBS_ADDR/healthz"; then
        break
    fi
    if ! kill -0 "$NODE_PID" 2>/dev/null; then
        echo "obs-smoke: datnode exited early" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

check() {
    local path=$1 must_contain=$2
    local body
    if ! body=$(curl -sf "http://$OBS_ADDR$path"); then
        echo "obs-smoke: GET $path returned non-200" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if [[ -z "$body" ]]; then
        echo "obs-smoke: GET $path returned an empty body" >&2
        exit 1
    fi
    if [[ -n "$must_contain" ]] && ! grep -q "$must_contain" <<<"$body"; then
        echo "obs-smoke: GET $path missing \"$must_contain\":" >&2
        echo "$body" >&2
        exit 1
    fi
    echo "obs-smoke: $path ok"
}

check /healthz '"running":true'
check /metrics '# TYPE chord_lookup_hops histogram'
check /metrics '# TYPE dat_rounds_total counter'
check /metrics '# TYPE dat_tree_updates_sent_total counter'
check /metrics '# TYPE dat_tree_wire_bytes_total counter'
check /debug/dat 'self'
check /debug/load '== cluster load (self-monitoring DAT) =='
check /debug/load '== per-tree load (this node) =='
check /debug/pprof/ goroutine

# datnode runs -selfmon by default (slot 4x the 1s aggregation slot), so
# within a few rounds /debug/load must serve a live cluster summary read
# back through the node's own dat.load.* trees.
for i in $(seq 1 60); do
    if curl -sf "http://$OBS_ADDR/debug/load" | grep -q 'imbalance (max/mean):'; then
        break
    fi
    if [[ "$i" == 60 ]]; then
        echo "obs-smoke: /debug/load never served a live cluster summary" >&2
        curl -sf "http://$OBS_ADDR/debug/load" >&2 || true
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done
echo "obs-smoke: /debug/load live cluster summary ok"

echo "obs-smoke: all endpoints healthy"
