package dat_test

// Live observability test: boots a small ring of real UDP peers with an
// Observer attached to the bootstrap node, then scrapes the observer's
// HTTP endpoints the way Prometheus and an operator would — /metrics
// must expose the chord lookup-hop histogram and the DAT aggregation
// counters with live (non-zero) values, /healthz must report the node
// running, and the pprof and debug pages must render.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dat "repro"
	"repro/internal/obs"
)

func TestLivePeerObservabilityEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	attrs := []dat.Attribute{{Name: "cpu-usage", Min: 0, Max: 100}}
	observer := obs.NewObserver(1024)
	mk := func(name string, o *obs.Observer) *dat.Peer {
		p, err := dat.NewPeer(dat.PeerConfig{
			Listen:     "127.0.0.1:0",
			Name:       name,
			Attributes: attrs,
			Stabilize:  40 * time.Millisecond,
			FixFingers: 60 * time.Millisecond,
			Ping:       100 * time.Millisecond,
			Observer:   o,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		p.AddSensor("cpu-usage", func() (float64, bool) { return 25, true })
		return p
	}

	boot := mk("host0", observer)
	boot.Create()
	peers := []*dat.Peer{boot}
	for i := 1; i < 4; i++ {
		p := mk("host"+string(rune('0'+i)), nil)
		if err := p.Join(boot.Addr()); err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	for _, p := range peers {
		if err := p.StartMonitor("cpu-usage", 100*time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	covered := false
	for !covered {
		for _, p := range peers {
			if agg, ok := p.LatestResult("cpu-usage"); ok && agg.Count == 4 {
				covered = true
			}
		}
		if covered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aggregate never covered all peers")
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Drive a lookup on the observed node so the hop histogram has a
	// live sample (joins run their lookups on the joining side).
	if _, err := boot.Query("cpu-usage", 400*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(observer.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, metrics := get("/metrics")
	if code != http.StatusOK || len(metrics) == 0 {
		t.Fatalf("/metrics: code=%d len=%d", code, len(metrics))
	}
	for _, want := range []string{
		"# TYPE chord_lookup_hops histogram",
		"# TYPE dat_rounds_total counter",
		"# TYPE dat_transport_messages_total counter",
		`dat_transport_messages_total{type="dat.update"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Live values, not just registered families.
	if strings.Contains(metrics, "chord_lookup_hops_count 0\n") {
		t.Error("chord_lookup_hops has no samples after a query")
	}
	if observer.Spans.Total() == 0 {
		t.Error("no aggregation spans recorded on the observed node")
	}

	code, health := get("/healthz")
	if code != http.StatusOK || !strings.Contains(health, `"running":true`) {
		t.Fatalf("/healthz: code=%d body=%s", code, health)
	}

	code, debug := get("/debug/dat")
	if code != http.StatusOK || !strings.Contains(debug, "self") {
		t.Fatalf("/debug/dat: code=%d body=%q", code, debug)
	}

	code, pprofIdx := get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}
