package dat_test

// Live observability test: boots a small ring of real UDP peers with an
// Observer attached to the bootstrap node, then scrapes the observer's
// HTTP endpoints the way Prometheus and an operator would — /metrics
// must expose the chord lookup-hop histogram and the DAT aggregation
// counters with live (non-zero) values, /healthz must report the node
// running, and the pprof and debug pages must render.
//
// The monitored attributes are chosen after the ring forms so that the
// observed node provably roots one tree (it receives child updates —
// spans and inbound aggregation frames) and is a plain sender in the
// other (it completes acked deliveries and gets replies). With a fixed
// attribute list the ephemeral-port-derived identifiers can leave the
// observed node a pure leaf of the only tree, and a leaf's /metrics
// page has no inbound aggregation traffic to assert on.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dat "repro"
	"repro/internal/ident"
	"repro/internal/obs"
)

// pickAttrRootedAt returns the first attribute name whose rendezvous key
// is (rooted=true) or is not (rooted=false) owned by peer idx, under the
// same successor rule the DAT layer uses to place tree roots.
func pickAttrRootedAt(t *testing.T, peerIDs []uint64, idx int, rooted bool) string {
	t.Helper()
	space := ident.New(32)
	const ringMask = 1<<32 - 1
	for i := 0; i < 256; i++ {
		attr := fmt.Sprintf("obs-attr-%02d", i)
		key := uint64(space.HashString(attr))
		best, bestDist := -1, uint64(ringMask)+1
		for p, id := range peerIDs {
			if d := (id - key) & ringMask; d < bestDist {
				best, bestDist = p, d
			}
		}
		if (best == idx) == rooted {
			return attr
		}
	}
	t.Fatalf("no attribute name with rooted-at-%d=%v over peers %v", idx, rooted, peerIDs)
	return ""
}

func TestLivePeerObservabilityEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	observer := obs.NewObserver(1024)
	mk := func(name string, o *obs.Observer) *dat.Peer {
		p, err := dat.NewPeer(dat.PeerConfig{
			Listen:     "127.0.0.1:0",
			Name:       name,
			Stabilize:  40 * time.Millisecond,
			FixFingers: 60 * time.Millisecond,
			Ping:       100 * time.Millisecond,
			SelfMon:    dat.SelfMonConfig{Enable: true, Slot: 200 * time.Millisecond},
			// Roots broadcast completed rounds, so every peer's cached
			// ClusterLoad (and hence /debug/load) goes live, not just the
			// load tree's root.
			ShareResults: true,
			Observer:     o,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}

	boot := mk("host0", observer)
	boot.Create()
	peers := []*dat.Peer{boot}
	for i := 1; i < 4; i++ {
		p := mk("host"+string(rune('0'+i)), nil)
		if err := p.Join(boot.Addr()); err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}

	ids := make([]uint64, len(peers))
	for i, p := range peers {
		ids[i] = p.ID()
	}
	attrs := []string{
		pickAttrRootedAt(t, ids, 0, true),  // boot receives child updates
		pickAttrRootedAt(t, ids, 0, false), // boot sends its own updates
	}
	for _, p := range peers {
		for _, attr := range attrs {
			p.AddSensor(attr, func() (float64, bool) { return 25, true })
			if err := p.StartMonitor(attr, 100*time.Millisecond, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	covered := make(map[string]bool, len(attrs))
	for len(covered) < len(attrs) {
		for _, attr := range attrs {
			if covered[attr] {
				continue
			}
			for _, p := range peers {
				if agg, ok := p.LatestResult(attr); ok && agg.Count == uint64(len(peers)) {
					covered[attr] = true
					break
				}
			}
		}
		if len(covered) == len(attrs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d aggregates covered all peers", len(covered), len(attrs))
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Drive a lookup on the observed node so the hop histogram has a
	// live sample (joins run their lookups on the joining side). The
	// queried tree is rooted elsewhere, so the lookup actually routes.
	if _, err := boot.Query(attrs[1], 400*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Self-monitoring plane: every peer contributes its load counters to
	// the dat.load.* trees; any member answers the cluster question.
	for _, p := range peers {
		if err := p.StartSelfMonitor(); err != nil {
			t.Fatal(err)
		}
	}
	for {
		s, err := peers[2].QueryClusterLoad(400 * time.Millisecond)
		if err == nil && s.Nodes == uint64(len(peers)) {
			if s.Sum <= 0 || s.Imbalance < 1 {
				t.Fatalf("incoherent cluster load summary %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster load never covered all peers (last: %+v err=%v)", s, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The observed peer's cached summary (fed by ShareResults broadcasts)
	// is what /debug/load renders; wait for it to go live.
	for {
		if s, ok := boot.ClusterLoad(); ok && s.Nodes == uint64(len(peers)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("observed peer never cached a cluster load summary")
		}
		time.Sleep(100 * time.Millisecond)
	}

	srv := httptest.NewServer(observer.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, metrics := get("/metrics")
	if code != http.StatusOK || len(metrics) == 0 {
		t.Fatalf("/metrics: code=%d len=%d", code, len(metrics))
	}
	for _, want := range []string{
		"# TYPE chord_lookup_hops histogram",
		"# TYPE dat_rounds_total counter",
		"# TYPE dat_transport_messages_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Inbound aggregation traffic reached the observed root: child
	// updates arrive either as plain frames or coalesced into batch
	// envelopes, depending on how the senders' queues lined up.
	if !strings.Contains(metrics, `dat_transport_messages_total{type="dat.update"}`) &&
		!strings.Contains(metrics, `dat_transport_messages_total{type="dat.batch"}`) {
		t.Error("/metrics shows no inbound dat.update or dat.batch frames")
	}
	// And the observed node's own sends completed their acked chains.
	if v := metricSum(t, metrics, `dat_update_deliveries_total{outcome="ok"}`); v == 0 {
		t.Error("observed node completed no acked update deliveries")
	}
	// Live values, not just registered families.
	if strings.Contains(metrics, "chord_lookup_hops_count 0\n") {
		t.Error("chord_lookup_hops has no samples after a query")
	}
	if observer.Spans.Total() == 0 {
		t.Error("no aggregation spans recorded on the observed node")
	}

	code, health := get("/healthz")
	if code != http.StatusOK || !strings.Contains(health, `"running":true`) {
		t.Fatalf("/healthz: code=%d body=%s", code, health)
	}

	// The per-tree accounting surfaced on /metrics with bounded labels.
	for _, want := range []string{
		"# TYPE dat_tree_updates_sent_total counter",
		"# TYPE dat_tree_wire_bytes_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, `dat_tree_updates_sent_total{tree="`) {
		t.Error("/metrics has no per-tree send series after live traffic")
	}

	code, debug := get("/debug/dat")
	if code != http.StatusOK || !strings.Contains(debug, "self") {
		t.Fatalf("/debug/dat: code=%d body=%q", code, debug)
	}

	code, load := get("/debug/load")
	if code != http.StatusOK ||
		!strings.Contains(load, "== cluster load (self-monitoring DAT) ==") ||
		!strings.Contains(load, "== per-tree load (this node) ==") {
		t.Fatalf("/debug/load: code=%d body=%q", code, load)
	}
	if !strings.Contains(load, "imbalance (max/mean):") {
		t.Errorf("/debug/load has no live cluster summary:\n%s", load)
	}

	code, spans := get("/debug/spans?key=" + fmt.Sprint(uint64(ident.New(32).HashString(attrs[0]))))
	if code != http.StatusOK || !strings.Contains(spans, "spans match") {
		t.Fatalf("/debug/spans?key=: code=%d body=%q", code, spans)
	}

	code, pprofIdx := get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}
